"""Differential fault conformance: fluid vs packet engine.

The robustness sweep runs the same scenarios on both network engines, so
the two must agree on the *macro* semantics of every fault primitive: a
blackout zeroes delivery and throughput returns afterwards, a bandwidth
flap scales delivery by its factor, a loss burst raises the loss signal
only inside its window, a delay spike adds its extra delay to measured
RTT, a reorder window inflates the observed-loss signal.  These tests
drive a fixed-cwnd sender on each engine, bin both runs onto the same
grid, and compare the binned series inside / outside the fault window
within documented tolerances.

Known modelled divergence (asserted as such below): the packet engine
approximates reordering as loss (goodput dips), while the fluid engine
keeps the goodput and only inflates the loss observation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LinkConfig
from repro.netsim import FluidNetwork, PacketNetwork
from repro.netsim.faults import (
    BandwidthFlap,
    Blackout,
    DelaySpike,
    FaultSchedule,
    LossBurst,
    ReorderWindow,
)

BIN_S = 0.25
TICK_S = 0.002
SECONDS = 12.0
FAULT = (4.0, 6.0)  # every fault occupies [4 s, 6 s)
MARGIN = 0.5        # settle margin around window edges when binning

# Small scenario grid: (link, cwnd that saturates it).  cwnd is ~1.6x the
# BDP so the pre-fault link runs at capacity with a standing queue.
GRID = [
    pytest.param(LinkConfig(bandwidth_mbps=20.0, rtt_ms=30.0,
                            buffer_bdp=2.0), 80.0, id="20mbps-30ms"),
    pytest.param(LinkConfig(bandwidth_mbps=48.0, rtt_ms=20.0,
                            buffer_bdp=2.0), 128.0, id="48mbps-20ms"),
]


def fluid_series(link, cwnd, faults):
    net = FluidNetwork(link, faults=faults)
    fid = net.add_flow(base_rtt_s=link.rtt_ms / 1e3, cwnd_pkts=cwnd)
    records = []
    per_bin = int(round(BIN_S / TICK_S))
    while net.now < SECONDS - 1e-9:
        for _ in range(per_bin):
            net.advance(TICK_S)
        stats = net.monitor(fid).collect(net.now, cwnd, 0.0,
                                         net.pkts_in_flight(fid))
        records.append({"t": net.now,
                        "delivered_pps": stats.throughput_pps,
                        "rtt_s": stats.avg_rtt_s,
                        "lost": stats.lost_pkts,
                        "sent": stats.sent_pkts})
    return records


def packet_series(link, cwnd, faults, seed=0):
    records = []

    def on_mtp(stats):
        records.append({"t": stats["time_s"],
                        "delivered_pps": stats["throughput_pps"],
                        "rtt_s": stats["avg_rtt_s"],
                        "lost": stats["lost_pkts"],
                        "sent": stats["sent_pkts"]})
        return None  # fixed cwnd

    net = PacketNetwork(link, seed=seed, mtp_s=BIN_S, faults=faults)
    net.add_flow(base_rtt_s=link.rtt_ms / 1e3, cwnd=cwnd, on_mtp=on_mtp)
    net.run(SECONDS)
    return records


def both(link, cwnd, *events):
    faults = FaultSchedule(tuple(events))
    return {"fluid": fluid_series(link, cwnd, faults),
            "packet": packet_series(link, cwnd, faults)}


def select(records, lo, hi):
    """Bins entirely inside (lo, hi] — ``t`` stamps the bin's end."""
    out = [r for r in records if r["t"] - BIN_S >= lo and r["t"] <= hi]
    assert out, f"no bins inside ({lo}, {hi}]"
    return out


def mean(records, key):
    return float(np.mean([r[key] for r in records]))


def loss_fraction(records):
    lost = sum(r["lost"] for r in records)
    sent = sum(r["sent"] for r in records)
    return lost / sent if sent else 0.0


def phases(records):
    """(pre, during, post) bins with settle margins at the edges."""
    return (select(records, 1.0, FAULT[0]),
            select(records, FAULT[0] + MARGIN, FAULT[1]),
            select(records, FAULT[1] + MARGIN, SECONDS))


@pytest.mark.parametrize("link,cwnd", GRID)
class TestBlackoutConformance:
    def test_zeroes_delivery_then_recovers(self, link, cwnd):
        runs = both(link, cwnd, Blackout(FAULT[0], FAULT[1] - FAULT[0]))
        for engine, records in runs.items():
            pre, during, post = phases(records)
            base = mean(pre, "delivered_pps")
            assert base > 0, engine
            assert mean(during, "delivered_pps") < 0.05 * base, engine
            assert mean(post, "delivered_pps") > 0.7 * base, engine

    def test_engines_agree_on_steady_state(self, link, cwnd):
        runs = both(link, cwnd, Blackout(FAULT[0], FAULT[1] - FAULT[0]))
        pre = {e: mean(phases(r)[0], "delivered_pps")
               for e, r in runs.items()}
        post = {e: mean(phases(r)[2], "delivered_pps")
                for e, r in runs.items()}
        assert pre["fluid"] == pytest.approx(pre["packet"], rel=0.15)
        assert post["fluid"] == pytest.approx(post["packet"], rel=0.20)


@pytest.mark.parametrize("link,cwnd", GRID)
class TestFlapConformance:
    FACTOR = 0.25

    def test_delivery_scales_by_factor(self, link, cwnd):
        runs = both(link, cwnd,
                    BandwidthFlap(FAULT[0], FAULT[1] - FAULT[0],
                                  factor=self.FACTOR))
        ratios = {}
        for engine, records in runs.items():
            pre, during, _ = phases(records)
            ratios[engine] = (mean(during, "delivered_pps")
                              / mean(pre, "delivered_pps"))
            assert ratios[engine] == pytest.approx(self.FACTOR, abs=0.15), \
                engine
        assert ratios["fluid"] == pytest.approx(ratios["packet"], abs=0.10)


@pytest.mark.parametrize("link,cwnd", GRID)
class TestLossBurstConformance:
    RATE = 0.2

    def test_loss_signal_confined_to_window(self, link, cwnd):
        runs = both(link, cwnd,
                    LossBurst(FAULT[0], FAULT[1] - FAULT[0],
                              loss_rate=self.RATE))
        for engine, records in runs.items():
            pre, during, post = phases(records)
            assert loss_fraction(during) == pytest.approx(self.RATE,
                                                          abs=0.08), engine
            assert loss_fraction(pre) < 0.02, engine
            assert loss_fraction(post) < 0.02, engine


@pytest.mark.parametrize("link,cwnd", GRID)
class TestDelaySpikeConformance:
    EXTRA_S = 0.040

    def test_rtt_raises_by_extra_delay(self, link, cwnd):
        runs = both(link, cwnd,
                    DelaySpike(FAULT[0], FAULT[1] - FAULT[0],
                               extra_ms=self.EXTRA_S * 1e3))
        bumps = {}
        for engine, records in runs.items():
            pre, during, _ = phases(records)
            bumps[engine] = mean(during, "rtt_s") - mean(pre, "rtt_s")
            assert bumps[engine] == pytest.approx(self.EXTRA_S,
                                                  abs=0.020), engine
        assert bumps["fluid"] == pytest.approx(bumps["packet"], abs=0.015)


@pytest.mark.parametrize("link,cwnd", GRID)
class TestReorderConformance:
    RATE = 0.2

    def test_spurious_loss_signal_in_both(self, link, cwnd):
        runs = both(link, cwnd,
                    ReorderWindow(FAULT[0], FAULT[1] - FAULT[0],
                                  rate=self.RATE))
        for engine, records in runs.items():
            pre, during, _ = phases(records)
            assert loss_fraction(during) > 0.1, engine
            assert loss_fraction(pre) < 0.02, engine

    def test_fluid_keeps_goodput_packet_drops_it(self, link, cwnd):
        # Documented divergence: the fluid engine models reordering as a
        # pure signal fault (goodput intact); the packet engine
        # approximates it as loss, so goodput dips during the window.
        runs = both(link, cwnd,
                    ReorderWindow(FAULT[0], FAULT[1] - FAULT[0],
                                  rate=self.RATE))
        pre_f, dur_f, _ = phases(runs["fluid"])
        assert mean(dur_f, "delivered_pps") == pytest.approx(
            mean(pre_f, "delivered_pps"), rel=0.10)
        pre_p, dur_p, _ = phases(runs["packet"])
        assert mean(dur_p, "delivered_pps") < \
            0.95 * mean(pre_p, "delivered_pps")


# ---------------------------------------------------------------------------
# Multi-flow workload-family conformance (incast, asymmetric-RTT,
# background-UDP).  Same method as above — fixed-cwnd senders, binned
# series on both engines — but with several flows, per-flow base RTTs,
# start/stop windows and pacing caps.  Flow specs are dicts:
# {cwnd, start, stop, extra_rtt_s, pacing_pps}; start/stop must land on
# bin edges so both engines see identical activity windows.
# ---------------------------------------------------------------------------

#: Shared bottleneck of the multi-flow tests (capacity ~1666.7 pkt/s).
MF_LINK = LinkConfig(bandwidth_mbps=20.0, rtt_ms=30.0, buffer_bdp=2.0)
MF_CAPACITY_PPS = 20e6 / (1500 * 8)


def fluid_multi(link, specs, seconds=SECONDS):
    from repro.netsim import FluidNetwork as _Fluid

    net = _Fluid(link)
    fids = [None] * len(specs)
    stopped = [False] * len(specs)
    records = [[] for _ in specs]
    per_bin = int(round(BIN_S / TICK_S))
    for b in range(int(round(seconds / BIN_S))):
        t0 = b * BIN_S
        for i, s in enumerate(specs):
            stop = s.get("stop", seconds)
            if fids[i] is not None and not stopped[i] and stop <= t0 + 1e-9:
                net.remove_flow(fids[i])
                stopped[i] = True
            if fids[i] is None and s.get("start", 0.0) <= t0 + 1e-9:
                fids[i] = net.add_flow(
                    base_rtt_s=link.rtt_ms / 1e3 + s.get("extra_rtt_s", 0.0),
                    cwnd_pkts=s["cwnd"], pacing_pps=s.get("pacing_pps"))
        for _ in range(per_bin):
            net.advance(TICK_S)
        for i, s in enumerate(specs):
            if fids[i] is None or stopped[i]:
                continue
            stats = net.monitor(fids[i]).collect(
                net.now, s["cwnd"], 0.0, net.pkts_in_flight(fids[i]))
            records[i].append({"t": net.now,
                               "delivered_pps": stats.throughput_pps,
                               "rtt_s": stats.avg_rtt_s,
                               "lost": stats.lost_pkts,
                               "sent": stats.sent_pkts})
    return records


def packet_multi(link, specs, seconds=SECONDS, seed=0):
    records = [[] for _ in specs]
    net = PacketNetwork(link, seed=seed, mtp_s=BIN_S)
    for i, s in enumerate(specs):
        def on_mtp(stats, i=i):
            records[i].append({"t": stats["time_s"],
                               "delivered_pps": stats["throughput_pps"],
                               "rtt_s": stats["avg_rtt_s"],
                               "lost": stats["lost_pkts"],
                               "sent": stats["sent_pkts"]})
            return None  # fixed cwnd
        net.add_flow(
            base_rtt_s=link.rtt_ms / 1e3 + s.get("extra_rtt_s", 0.0),
            cwnd=s["cwnd"], pacing_pps=s.get("pacing_pps"), on_mtp=on_mtp,
            start_s=s.get("start", 0.0), stop_s=s.get("stop", float("inf")))
    net.run(seconds)
    return records


def both_multi(link, specs):
    return {"fluid": fluid_multi(link, specs),
            "packet": packet_multi(link, specs)}


def steady(records):
    """Bins after a 2 s warmup, for always-on flows."""
    return select(records, 2.0, SECONDS)


class TestIncastConformance:
    """One elephant vs a synchronized 4-flow burst in [4 s, 6 s).

    Combined demand during the burst (80 + 4 x 25 = 180 pkts) exceeds
    pipe + buffer (50 + 100), so the burst must fill the queue: the
    elephant's RTT inflates toward base + buffer/capacity (~+60 ms) and
    its delivery drops toward its cwnd share, on *both* engines.
    """

    SPECS = [{"cwnd": 80.0}] + [
        {"cwnd": 25.0, "start": FAULT[0], "stop": FAULT[1]}
        for _ in range(4)]

    def test_queue_buildup_and_recovery(self):
        runs = both_multi(MF_LINK, self.SPECS)
        bumps, shares = {}, {}
        for engine, records in runs.items():
            pre, during, post = phases(records[0])
            base = mean(pre, "delivered_pps")
            assert base > 0.8 * MF_CAPACITY_PPS, engine
            bumps[engine] = mean(during, "rtt_s") - mean(pre, "rtt_s")
            shares[engine] = mean(during, "delivered_pps") / base
            # Queue buildup: at least 20 ms of extra queueing delay.
            assert bumps[engine] > 0.020, engine
            # The elephant yields capacity to the burst, then recovers.
            assert shares[engine] < 0.8, engine
            assert mean(post, "delivered_pps") > 0.8 * base, engine
        assert bumps["fluid"] == pytest.approx(bumps["packet"], abs=0.025)
        assert shares["fluid"] == pytest.approx(shares["packet"], abs=0.15)

    def test_link_stays_saturated_through_burst(self):
        runs = both_multi(MF_LINK, self.SPECS)
        for engine, records in runs.items():
            total = sum(
                mean(select(r, FAULT[0] + MARGIN, FAULT[1]), "delivered_pps")
                for r in records)
            assert total == pytest.approx(MF_CAPACITY_PPS, rel=0.15), engine


class TestAsymmetricRttConformance:
    """Equal windows at base RTTs 30/90/150 ms on one bottleneck.

    Fixed-cwnd throughput is cwnd/RTT, so both engines must rank the
    flows by RTT — the raw-engine root of the RTT-unfairness the
    asymmetric-rtt family measures on full controllers.
    """

    SPECS = [{"cwnd": 40.0},
             {"cwnd": 40.0, "extra_rtt_s": 0.060},
             {"cwnd": 40.0, "extra_rtt_s": 0.120}]

    def test_throughput_ordering_matches(self):
        runs = both_multi(MF_LINK, self.SPECS)
        thr = {}
        for engine, records in runs.items():
            thr[engine] = [mean(steady(r), "delivered_pps") for r in records]
            # Strict ordering with a real gap, not a tie within noise.
            assert thr[engine][0] > 1.5 * thr[engine][1], engine
            assert thr[engine][1] > 1.2 * thr[engine][2], engine
        for i in range(len(self.SPECS)):
            assert thr["fluid"][i] == pytest.approx(thr["packet"][i],
                                                    rel=0.20), i

    def test_aggregate_saturates_link(self):
        runs = both_multi(MF_LINK, self.SPECS)
        for engine, records in runs.items():
            total = sum(mean(steady(r), "delivered_pps") for r in records)
            assert total == pytest.approx(MF_CAPACITY_PPS, rel=0.10), engine


class TestBackgroundUdpConformance:
    """A cwnd-limited flow vs an unresponsive 500 pkt/s paced blaster.

    The blaster never backs off (pacing cap, window never binding), so
    both engines must deliver it its full rate and leave the foreground
    flow exactly the residual capacity, with the link still saturated.
    """

    UDP_PPS = 500.0
    SPECS = [{"cwnd": 80.0},
             {"cwnd": 200.0, "pacing_pps": UDP_PPS}]

    def test_residual_capacity_split(self):
        runs = both_multi(MF_LINK, self.SPECS)
        fg = {}
        for engine, records in runs.items():
            fg[engine] = mean(steady(records[0]), "delivered_pps")
            udp = mean(steady(records[1]), "delivered_pps")
            # The blaster gets its configured rate...
            assert udp == pytest.approx(self.UDP_PPS, rel=0.10), engine
            # ...and the foreground flow the residual capacity.
            assert fg[engine] == pytest.approx(
                MF_CAPACITY_PPS - self.UDP_PPS, rel=0.10), engine
        assert fg["fluid"] == pytest.approx(fg["packet"], rel=0.10)
