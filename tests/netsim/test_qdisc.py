"""Queue disciplines: RED, CoDel, and engine integration."""

from __future__ import annotations

import pytest

from repro.config import LinkConfig
from repro.errors import ConfigError
from repro.netsim import FluidNetwork
from repro.netsim.qdisc import CoDel, DropTail, Red, create_qdisc


class TestDropTail:
    def test_never_drops_early(self):
        q = DropTail()
        assert q.drop_fraction(1e9, 10.0, 0.0, 0.002) == 0.0


class TestRed:
    def test_no_drop_below_min_threshold(self):
        red = Red(min_th_pkts=50, max_th_pkts=150, max_p=0.1)
        for _ in range(100):
            assert red.drop_fraction(40.0, 0.01, 0.0, 0.002) == 0.0

    def test_linear_ramp_between_thresholds(self):
        red = Red(min_th_pkts=50, max_th_pkts=150, max_p=0.1, ewma=1.0)
        mid = red.drop_fraction(100.0, 0.01, 0.0, 0.002)
        assert mid == pytest.approx(0.05)

    def test_full_drop_above_max(self):
        red = Red(min_th_pkts=50, max_th_pkts=150, max_p=0.1, ewma=1.0)
        assert red.drop_fraction(200.0, 0.02, 0.0, 0.002) == 1.0

    def test_ewma_smooths_spikes(self):
        red = Red(min_th_pkts=50, max_th_pkts=150, max_p=0.1, ewma=0.05)
        # A single spike barely moves the average.
        first = red.drop_fraction(500.0, 0.05, 0.0, 0.002)
        assert first == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"min_th_pkts": 100, "max_th_pkts": 50},
        {"max_p": 0.0},
        {"ewma": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            Red(**kwargs)


class TestCoDel:
    def test_no_drop_below_target(self):
        codel = CoDel(target_s=0.005, interval_s=0.1)
        assert codel.drop_fraction(10.0, 0.001, 0.0, 0.002) == 0.0

    def test_waits_one_interval_before_dropping(self):
        codel = CoDel(target_s=0.005, interval_s=0.1)
        assert codel.drop_fraction(100.0, 0.02, 0.00, 0.002) == 0.0
        assert codel.drop_fraction(100.0, 0.02, 0.05, 0.002) == 0.0
        assert codel.drop_fraction(100.0, 0.02, 0.11, 0.002) > 0.0

    def test_drop_escalates(self):
        codel = CoDel(target_s=0.005, interval_s=0.1, base_drop=0.02)
        fractions = [codel.drop_fraction(100.0, 0.02, t, 0.002)
                     for t in [0.0, 0.11, 0.5, 1.5, 3.0]]
        assert fractions[-1] > fractions[1] > 0.0

    def test_exits_when_delay_recovers(self):
        codel = CoDel(target_s=0.005, interval_s=0.1)
        codel.drop_fraction(100.0, 0.02, 0.0, 0.002)
        codel.drop_fraction(100.0, 0.02, 0.2, 0.002)
        assert codel.drop_fraction(1.0, 0.001, 0.3, 0.002) == 0.0
        # Re-entry starts a fresh interval.
        assert codel.drop_fraction(100.0, 0.02, 0.31, 0.002) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            CoDel(target_s=0.0)
        with pytest.raises(ConfigError):
            CoDel(base_drop=0.0)


class TestRegistry:
    def test_create(self):
        assert isinstance(create_qdisc("red"), Red)
        assert isinstance(create_qdisc("codel"), CoDel)
        assert isinstance(create_qdisc("droptail"), DropTail)

    def test_unknown(self):
        with pytest.raises(ConfigError):
            create_qdisc("fq-godel")


class TestEngineIntegration:
    def run(self, qdisc, qdisc_kwargs=None, cwnd=800.0, seconds=4.0):
        link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=4.0,
                          qdisc=qdisc, qdisc_kwargs=qdisc_kwargs or {})
        net = FluidNetwork(link)
        fid = net.add_flow(base_rtt_s=0.030, cwnd_pkts=cwnd)
        for _ in range(int(seconds / 0.002)):
            net.advance(0.002)
        return net, fid

    def test_red_keeps_queue_below_droptail(self):
        tail, _ = self.run("droptail")
        red, _ = self.run("red", {"min_th_pkts": 50.0,
                                  "max_th_pkts": 200.0,
                                  "max_p": 0.3})
        assert red.queue_pkts() < tail.queue_pkts()
        assert red.link_drops_pkts() > 0

    def test_codel_bounds_queueing_delay(self):
        tail, tf = self.run("droptail")
        codel, cf = self.run("codel", {"target_s": 0.005})
        assert codel.queue_delay_s() < tail.queue_delay_s()

    def test_droptail_default_unchanged(self):
        net, fid = self.run("droptail", cwnd=100.0)
        assert net.link_drops_pkts() == 0.0
