"""Flow generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.netsim.flowgen import (
    heterogeneous_rtt_flows,
    poisson_flows,
    randomized_training_flows,
    simultaneous_flows,
    staggered_flows,
)


class TestStaggered:
    def test_start_times(self):
        flows = staggered_flows(3, interval_s=40.0, duration_s=120.0)
        assert [f.start_s for f in flows] == [0.0, 40.0, 80.0]
        assert all(f.duration_s == 120.0 for f in flows)

    def test_kwargs_forwarded(self):
        flows = staggered_flows(2, cc="vivace", interval_s=1.0, theta0=5.0)
        assert flows[0].cc_kwargs == {"theta0": 5.0}

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigError):
            staggered_flows(0)
        with pytest.raises(ConfigError):
            staggered_flows(2, interval_s=-1.0)

    def test_simultaneous(self):
        flows = simultaneous_flows(4, cc="cubic")
        assert all(f.start_s == 0.0 for f in flows)
        assert all(f.end_s() == float("inf") for f in flows)


class TestHeterogeneousRtt:
    def test_even_spacing(self):
        flows = heterogeneous_rtt_flows(5, "cubic", (40.0, 200.0),
                                        link_rtt_ms=40.0)
        extras = [f.extra_rtt_ms for f in flows]
        assert extras == pytest.approx([0.0, 40.0, 80.0, 120.0, 160.0])

    def test_rejects_rtt_below_link(self):
        with pytest.raises(ConfigError):
            heterogeneous_rtt_flows(3, "cubic", (10.0, 50.0),
                                    link_rtt_ms=40.0)

    def test_single_flow(self):
        flows = heterogeneous_rtt_flows(1, "cubic", (40.0, 200.0), 40.0)
        assert len(flows) == 1
        assert flows[0].extra_rtt_ms == 0.0


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = poisson_flows(0.2, 60.0, seed=5)
        b = poisson_flows(0.2, 60.0, seed=5)
        assert [f.start_s for f in a] == [f.start_s for f in b]

    def test_within_horizon(self):
        flows = poisson_flows(0.5, 30.0, seed=1)
        assert all(0.0 <= f.start_s < 30.0 for f in flows)

    def test_never_empty(self):
        flows = poisson_flows(1e-6, 1.0, seed=0)
        assert len(flows) >= 1

    def test_max_flows_cap(self):
        flows = poisson_flows(10.0, 100.0, seed=0, max_flows=7)
        assert len(flows) <= 7

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            poisson_flows(0.0, 10.0)


class TestRandomizedTraining:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=1000))
    def test_property_first_flow_at_zero_and_durations_positive(self, n, seed):
        flows = randomized_training_flows(n, 24.0, seed=seed)
        assert len(flows) == n
        assert flows[0].start_s == 0.0
        assert all(f.duration_s > 0 for f in flows)
        assert all(f.start_s <= 24.0 / 3.0 for f in flows)

    def test_rejects_zero_flows(self):
        with pytest.raises(ConfigError):
            randomized_training_flows(0, 10.0, seed=0)
