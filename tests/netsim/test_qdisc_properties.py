"""Property-based tests for queue disciplines."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.qdisc import CoDel, Red


@settings(max_examples=100, deadline=None)
@given(queue=st.floats(min_value=0.0, max_value=1e6),
       delay=st.floats(min_value=0.0, max_value=10.0),
       now=st.floats(min_value=0.0, max_value=1e4))
def test_red_fraction_always_valid(queue, delay, now):
    red = Red(min_th_pkts=50, max_th_pkts=150, max_p=0.1, ewma=1.0)
    frac = red.drop_fraction(queue, delay, now, 0.002)
    assert 0.0 <= frac <= 1.0


@settings(max_examples=100, deadline=None)
@given(queues=st.lists(st.floats(min_value=0.0, max_value=500.0),
                       min_size=2, max_size=30))
def test_red_monotone_in_average_queue(queues):
    """With instant EWMA, RED's drop fraction is monotone in the queue."""
    red = Red(min_th_pkts=50, max_th_pkts=150, max_p=0.1, ewma=1.0)
    fractions = [red.drop_fraction(q, 0.01, 0.0, 0.002)
                 for q in sorted(queues)]
    assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=0.2),
                       min_size=5, max_size=50))
def test_codel_fraction_always_valid(delays):
    codel = CoDel()
    t = 0.0
    for delay in delays:
        frac = codel.drop_fraction(100.0, delay, t, 0.002)
        assert 0.0 <= frac <= 1.0
        t += 0.05


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_codel_silent_below_target_forever(seed):
    codel = CoDel(target_s=0.005)
    import numpy as np

    rng = np.random.default_rng(seed)
    for i in range(50):
        delay = float(rng.uniform(0.0, 0.005))
        assert codel.drop_fraction(10.0, delay, i * 0.1, 0.002) == 0.0
