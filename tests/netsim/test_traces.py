"""Capacity traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.netsim.traces import (
    ConstantTrace,
    LteTrace,
    StepTrace,
    WanTrace,
    create_trace,
)


class TestConstantTrace:
    def test_value_and_mean(self):
        tr = ConstantTrace(42.0)
        assert tr(0.0) == 42.0
        assert tr(1e6) == 42.0
        assert tr.mean_mbps == 42.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            ConstantTrace(0.0)


class TestStepTrace:
    def test_steps(self):
        tr = StepTrace([(0.0, 10.0), (5.0, 20.0), (10.0, 5.0)])
        assert tr(0.0) == 10.0
        assert tr(4.99) == 10.0
        assert tr(5.0) == 20.0
        assert tr(100.0) == 5.0

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigError):
            StepTrace([(0.0, 10.0), (5.0, 20.0), (3.0, 5.0)])

    def test_rejects_missing_origin(self):
        with pytest.raises(ConfigError):
            StepTrace([(1.0, 10.0)])

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            StepTrace([])

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigError):
            StepTrace([(0.0, -1.0)])


class TestLteTrace:
    def test_deterministic_per_seed(self):
        a = LteTrace(seed=3, duration_s=20.0)
        b = LteTrace(seed=3, duration_s=20.0)
        ts = np.linspace(0, 19, 50)
        assert all(a(t) == b(t) for t in ts)

    def test_different_seeds_differ(self):
        a = LteTrace(seed=1, duration_s=20.0)
        b = LteTrace(seed=2, duration_s=20.0)
        ts = np.linspace(0, 19, 50)
        assert any(a(t) != b(t) for t in ts)

    def test_rates_positive_and_varying(self):
        tr = LteTrace(seed=0, duration_s=60.0)
        samples = np.array([tr(t) for t in np.linspace(0, 59, 600)])
        assert (samples > 0).all()
        # LTE links vary drastically: expect at least 3x dynamic range.
        assert samples.max() / samples.min() > 3.0

    def test_mean_in_lte_range(self):
        tr = LteTrace(seed=0, duration_s=120.0)
        assert 3.0 < tr.mean_mbps < 40.0

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigError):
            LteTrace(duration_s=0.0)


class TestWanTrace:
    @pytest.mark.parametrize("kind", ["intra", "inter"])
    def test_positive(self, kind):
        tr = WanTrace(kind=kind, seed=0, duration_s=60.0)
        samples = [tr(t) for t in np.linspace(0, 59, 300)]
        assert min(samples) > 0

    def test_inter_has_more_cross_traffic(self):
        intra = WanTrace(kind="intra", nominal_mbps=500, seed=0)
        inter = WanTrace(kind="inter", nominal_mbps=500, seed=0)
        assert inter.mean_mbps <= intra.mean_mbps * 1.05

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            WanTrace(kind="orbital")

    def test_rejects_bad_nominal(self):
        with pytest.raises(ConfigError):
            WanTrace(nominal_mbps=-5.0)


class TestRegistry:
    def test_create_constant(self):
        tr = create_trace("constant", mbps=7.0)
        assert tr(3.0) == 7.0

    def test_create_unknown(self):
        with pytest.raises(ConfigError):
            create_trace("warp-link")


class TestWifiTrace:
    def test_rates_from_mcs_set_or_contention(self):
        from repro.netsim.traces import WifiTrace

        tr = WifiTrace(seed=0, duration_s=30.0)
        samples = [tr(t) for t in np.linspace(0, 29, 300)]
        assert min(samples) > 0
        assert max(samples) <= max(WifiTrace.RATES_MBPS)

    def test_deterministic_per_seed(self):
        from repro.netsim.traces import WifiTrace

        a, b = WifiTrace(seed=4, duration_s=10.0), WifiTrace(seed=4,
                                                             duration_s=10.0)
        assert all(a(t) == b(t) for t in np.linspace(0, 9, 40))

    def test_rejects_bad_duration(self):
        from repro.netsim.traces import WifiTrace

        with pytest.raises(ConfigError):
            WifiTrace(duration_s=0.0)


class TestDiurnalTrace:
    def test_oscillates_between_bounds(self):
        from repro.netsim.traces import DiurnalTrace

        tr = DiurnalTrace(low_mbps=20.0, high_mbps=100.0, period_s=60.0)
        samples = np.array([tr(t) for t in np.linspace(0, 120, 600)])
        assert samples.min() >= 20.0 - 1e-9
        assert samples.max() <= 100.0 + 1e-9
        assert samples.min() < 25.0 and samples.max() > 95.0

    def test_mean_is_midpoint(self):
        from repro.netsim.traces import DiurnalTrace

        assert DiurnalTrace(20.0, 100.0).mean_mbps == 60.0

    def test_period_respected(self):
        from repro.netsim.traces import DiurnalTrace

        tr = DiurnalTrace(period_s=50.0)
        assert tr(0.0) == pytest.approx(tr(50.0))

    def test_validation(self):
        from repro.netsim.traces import DiurnalTrace

        with pytest.raises(ConfigError):
            DiurnalTrace(low_mbps=0.0)
        with pytest.raises(ConfigError):
            DiurnalTrace(period_s=0.0)


class TestNewRegistryEntries:
    def test_wifi_and_diurnal_registered(self):
        assert create_trace("wifi", seed=0, duration_s=5.0)(1.0) > 0
        assert create_trace("diurnal")(0.0) > 0
