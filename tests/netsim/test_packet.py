"""Packet-level simulator behaviour."""

from __future__ import annotations

import pytest

from repro.config import LinkConfig
from repro.errors import SimulationError
from repro.netsim import PacketNetwork
from repro.units import mbps_to_pps


def small_link(bw=12.0, rtt=30.0, buffer_bdp=1.0, loss=0.0):
    return LinkConfig(bandwidth_mbps=bw, rtt_ms=rtt, buffer_bdp=buffer_bdp,
                      random_loss=loss)


class TestSingleFlow:
    def test_window_limited_throughput(self):
        link = small_link()
        net = PacketNetwork(link, seed=0)
        f = net.add_flow(base_rtt_s=0.030, cwnd=10.0)  # BDP = 30
        net.run(5.0)
        stats = net.stats(f)
        expected = 10.0 / 0.030  # pkts per second
        measured = stats.delivered / 5.0
        assert measured == pytest.approx(expected, rel=0.05)
        assert stats.lost == 0

    def test_capacity_limited_throughput(self):
        link = small_link(buffer_bdp=4.0)
        net = PacketNetwork(link, seed=0)
        f = net.add_flow(base_rtt_s=0.030, cwnd=100.0)
        net.run(5.0)
        measured = net.stats(f).delivered / 5.0
        assert measured == pytest.approx(mbps_to_pps(12.0), rel=0.05)

    def test_overflow_causes_loss(self):
        link = small_link(buffer_bdp=0.5)
        net = PacketNetwork(link, seed=0)
        f = net.add_flow(base_rtt_s=0.030, cwnd=500.0)
        net.run(5.0)
        assert net.stats(f).lost > 0

    def test_random_loss(self):
        link = small_link(loss=0.05, buffer_bdp=4.0)
        net = PacketNetwork(link, seed=0)
        f = net.add_flow(base_rtt_s=0.030, cwnd=20.0)
        net.run(10.0)
        stats = net.stats(f)
        rate = stats.lost / max(stats.lost + stats.delivered, 1)
        assert rate == pytest.approx(0.05, abs=0.02)

    def test_rtt_includes_queueing(self):
        link = small_link(buffer_bdp=4.0)
        net = PacketNetwork(link, seed=0)
        f = net.add_flow(base_rtt_s=0.030, cwnd=60.0)  # 2x BDP
        net.run(5.0)
        # Standing queue of ~30 packets at 1000 pkt/s adds ~30 ms.
        assert net.stats(f).avg_rtt_s == pytest.approx(0.060, rel=0.10)


class TestCallbacks:
    def test_mtp_callback_adjusts_cwnd(self):
        link = small_link()
        net = PacketNetwork(link, seed=0, mtp_s=0.030)
        seen = []

        def on_mtp(stats):
            seen.append(stats)
            return 20.0

        f = net.add_flow(base_rtt_s=0.030, cwnd=5.0, on_mtp=on_mtp)
        net.run(2.0)
        assert len(seen) >= 50
        measured = net.stats(f).delivered / 2.0
        assert measured == pytest.approx(20.0 / 0.030, rel=0.10)


class TestStartStopWindows:
    def test_flow_sends_only_inside_its_window(self):
        link = small_link(buffer_bdp=4.0)
        net = PacketNetwork(link, seed=0)
        f = net.add_flow(base_rtt_s=0.030, cwnd=10.0, start_s=2.0,
                         stop_s=4.0)
        net.run(6.0)
        stats = net.stats(f)
        # ~2 s of window-limited sending, nothing before or after.
        assert stats.delivered == pytest.approx(2.0 * 10.0 / 0.030,
                                                rel=0.10)

    def test_windows_observed_via_mtp_timestamps(self):
        link = small_link(buffer_bdp=4.0)
        net = PacketNetwork(link, seed=0, mtp_s=0.25)
        windows = []

        def on_mtp(stats):
            if stats["throughput_pps"] > 0:
                windows.append(stats["time_s"])
            return None

        net.add_flow(base_rtt_s=0.030, cwnd=10.0, on_mtp=on_mtp,
                     start_s=2.0, stop_s=4.0)
        net.run(6.0)
        assert windows, "flow never delivered"
        # First delivering window ends just after start; none after stop.
        assert min(windows) == pytest.approx(2.25, abs=0.26)
        assert max(windows) <= 4.0 + 1e-9

    def test_late_starter_takes_capacity_from_incumbent(self):
        link = small_link(buffer_bdp=2.0)
        cap = mbps_to_pps(12.0)
        net = PacketNetwork(link, seed=0)
        a = net.add_flow(base_rtt_s=0.030, cwnd=200.0)
        b = net.add_flow(base_rtt_s=0.030, cwnd=200.0, start_s=5.0)
        net.run(10.0)
        # Flow a had the link alone for 5 s, then shared it for 5 s.
        assert net.stats(a).delivered / 10.0 == pytest.approx(0.75 * cap,
                                                              rel=0.10)
        assert net.stats(b).delivered / 10.0 == pytest.approx(0.25 * cap,
                                                              rel=0.15)

    def test_default_window_is_whole_run(self):
        net = PacketNetwork(small_link(), seed=0)
        f = net.add_flow(base_rtt_s=0.030, cwnd=10.0)
        net.run(3.0)
        assert net.stats(f).delivered > 0


class TestValidation:
    def test_rejects_bad_rtt(self):
        net = PacketNetwork(small_link())
        with pytest.raises(SimulationError):
            net.add_flow(base_rtt_s=0.0)

    def test_rejects_bad_duration(self):
        net = PacketNetwork(small_link())
        net.add_flow(base_rtt_s=0.03)
        with pytest.raises(SimulationError):
            net.run(0.0)

    def test_rejects_negative_start(self):
        net = PacketNetwork(small_link())
        with pytest.raises(SimulationError):
            net.add_flow(base_rtt_s=0.03, start_s=-1.0)

    def test_rejects_stop_before_start(self):
        net = PacketNetwork(small_link())
        with pytest.raises(SimulationError):
            net.add_flow(base_rtt_s=0.03, start_s=2.0, stop_s=2.0)
