"""Fault-injection subsystem: primitives, schedules, and both engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LinkConfig, ScenarioConfig
from repro.errors import ConfigError
from repro.netsim import FluidNetwork, PacketNetwork
from repro.netsim.faults import (
    MAX_FAULT_LOSS,
    BandwidthFlap,
    Blackout,
    DelaySpike,
    FaultSchedule,
    LossBurst,
    ReorderWindow,
)


class TestEvents:
    def test_window_semantics(self):
        e = Blackout(2.0, 1.0)
        assert not e.active(1.999)
        assert e.active(2.0)
        assert e.active(2.999)
        assert not e.active(3.0)
        assert e.end_s == 3.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            Blackout(-1.0, 1.0)
        with pytest.raises(ConfigError):
            Blackout(0.0, 0.0)
        with pytest.raises(ConfigError):
            BandwidthFlap(0.0, 1.0, factor=0.0)
        with pytest.raises(ConfigError):
            LossBurst(0.0, 1.0, loss_rate=1.5)
        with pytest.raises(ConfigError):
            DelaySpike(0.0, 1.0, extra_ms=-5.0)
        with pytest.raises(ConfigError):
            ReorderWindow(0.0, 1.0, rate=0.0)

    def test_events_are_immutable(self):
        e = LossBurst(0.0, 1.0, loss_rate=0.1)
        with pytest.raises(Exception):
            e.loss_rate = 0.5


class TestSchedule:
    def test_empty_schedule_is_falsy_and_neutral(self):
        s = FaultSchedule()
        assert not s
        assert s.bandwidth_multiplier(1.0) == 1.0
        assert s.extra_loss(1.0) == 0.0
        assert s.spurious_loss(1.0) == 0.0
        assert s.extra_delay_s(1.0) == 0.0
        assert s.blackout_until(1.0) is None
        assert s.end_s == 0.0

    def test_rejects_non_events(self):
        with pytest.raises(ConfigError):
            FaultSchedule(events=("blackout",))

    def test_blackout_dominates_multiplier(self):
        s = FaultSchedule((Blackout(1.0, 1.0),
                           BandwidthFlap(0.5, 3.0, factor=0.5)))
        assert s.bandwidth_multiplier(0.7) == 0.5
        assert s.bandwidth_multiplier(1.5) == 0.0
        assert s.bandwidth_multiplier(2.5) == 0.5

    def test_overlapping_flaps_compose_multiplicatively(self):
        s = FaultSchedule((BandwidthFlap(0.0, 2.0, factor=0.5),
                           BandwidthFlap(1.0, 2.0, factor=0.4)))
        assert s.bandwidth_multiplier(1.5) == pytest.approx(0.2)

    def test_loss_and_delay_add_and_cap(self):
        s = FaultSchedule((LossBurst(0.0, 1.0, loss_rate=0.6),
                           LossBurst(0.0, 1.0, loss_rate=0.6),
                           DelaySpike(0.0, 1.0, extra_ms=30.0),
                           DelaySpike(0.0, 1.0, extra_ms=20.0)))
        assert s.extra_loss(0.5) == MAX_FAULT_LOSS
        assert s.extra_delay_s(0.5) == pytest.approx(0.050)

    def test_blackout_until_follows_chained_blackouts(self):
        s = FaultSchedule((Blackout(1.0, 1.0), Blackout(1.5, 2.0)))
        assert s.blackout_until(1.2) == pytest.approx(3.5)
        assert s.blackout_until(0.5) is None

    def test_sample_deterministic_per_seed(self):
        a = FaultSchedule.sample(60.0, seed=7)
        b = FaultSchedule.sample(60.0, seed=7)
        assert a.to_dicts() == b.to_dicts()
        assert 1 <= len(a.events) <= 3
        for e in a.events:
            assert 0.1 * 60.0 <= e.start_s <= 0.9 * 60.0
            assert 0.02 * 60.0 <= e.duration_s <= 0.15 * 60.0
        # Different seeds draw different schedules (overwhelmingly).
        others = [FaultSchedule.sample(60.0, seed=s).to_dicts()
                  for s in range(8, 16)]
        assert any(o != a.to_dicts() for o in others)

    def test_sample_kind_filter_and_validation(self):
        s = FaultSchedule.sample(60.0, seed=3, kinds=("blackout",),
                                 max_events=2)
        assert all(isinstance(e, Blackout) for e in s.events)
        with pytest.raises(ConfigError):
            FaultSchedule.sample(60.0, seed=0, kinds=("meteor-strike",))
        with pytest.raises(ConfigError):
            FaultSchedule.sample(0.0, seed=0)
        with pytest.raises(ConfigError):
            FaultSchedule.sample(60.0, seed=0, max_events=0)

    def test_round_trip_and_describe(self):
        s = FaultSchedule((Blackout(1.0, 0.5),
                           BandwidthFlap(2.0, 1.0, factor=0.3),
                           LossBurst(3.0, 1.0, loss_rate=0.1),
                           DelaySpike(4.0, 1.0, extra_ms=40.0),
                           ReorderWindow(5.0, 1.0, rate=0.05)))
        again = FaultSchedule.from_dicts(s.to_dicts())
        assert again == s
        text = s.describe()
        for kind in ("blackout", "flap", "loss-burst", "delay-spike",
                     "reorder"):
            assert kind in text
        assert FaultSchedule().describe() == "(no faults)"

    def test_from_dicts_rejects_garbage(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_dicts([{"kind": "nope", "start_s": 0,
                                       "duration_s": 1}])
        with pytest.raises(ConfigError):
            FaultSchedule.from_dicts([{"kind": "blackout", "start_s": 0,
                                       "duration_s": 1, "bogus": 2}])


LINK = LinkConfig(bandwidth_mbps=20.0, rtt_ms=30.0, buffer_bdp=1.0)


def _run_fluid(faults, seconds=4.0, dt=0.002, cwnd=200.0):
    net = FluidNetwork(LINK, seed=0, faults=faults)
    fid = net.add_flow(base_rtt_s=0.030, cwnd_pkts=cwnd)
    samples = []
    for _ in range(int(seconds / dt)):
        net.advance(dt)
        samples.append((net.now, net.flow_goodput_pps(fid),
                        net.flow_rtt_s(fid), net.queue_pkts()))
    return net, fid, samples


class TestFluidEngine:
    def test_blackout_stalls_delivery_then_recovers(self):
        faults = FaultSchedule((Blackout(1.0, 0.5),))
        net, fid, samples = _run_fluid(faults)
        during = [g for t, g, _, _ in samples if 1.1 <= t < 1.5]
        after = [g for t, g, _, _ in samples if t >= 3.0]
        assert max(during) == pytest.approx(0.0, abs=1e-9)
        assert np.mean(after) > 100.0  # service resumed

    def test_blackout_keeps_rtt_finite(self):
        faults = FaultSchedule((Blackout(1.0, 0.5),))
        _, _, samples = _run_fluid(faults)
        rtts = [r for _, _, r, _ in samples]
        assert np.isfinite(rtts).all()

    def test_flap_shrinks_goodput_proportionally(self):
        faults = FaultSchedule((BandwidthFlap(1.0, 2.0, factor=0.25),))
        net, fid, samples = _run_fluid(faults, seconds=3.0)
        from repro.units import mbps_to_pps

        cap = net.link_capacity_pps()  # still inside the flap at t=3.0
        during = [g for t, g, _, _ in samples if 2.0 <= t < 3.0]
        baseline = [g for t, g, _, _ in samples if 0.7 <= t < 1.0]
        assert cap == pytest.approx(0.25 * mbps_to_pps(LINK.bandwidth_mbps),
                                    rel=1e-6)
        assert np.mean(during) == pytest.approx(0.25 * np.mean(baseline),
                                                rel=0.1)

    def test_loss_burst_inflates_observed_loss(self):
        faults = FaultSchedule((LossBurst(1.0, 1.0, loss_rate=0.2),))
        net, fid, _ = _run_fluid(faults, seconds=1.5, cwnd=40.0)
        assert net._flows[fid].total_lost_pkts > 0

    def test_delay_spike_raises_rtt_by_extra(self):
        faults = FaultSchedule((DelaySpike(1.0, 1.0, extra_ms=50.0),))
        _, _, samples = _run_fluid(faults, seconds=2.0, cwnd=10.0)
        rtt_before = np.mean([r for t, _, r, _ in samples if 0.5 <= t < 1.0])
        rtt_during = np.mean([r for t, _, r, _ in samples if 1.2 <= t < 2.0])
        assert rtt_during - rtt_before == pytest.approx(0.050, abs=0.005)

    def test_reorder_signals_loss_without_goodput_hit(self):
        faults = FaultSchedule((ReorderWindow(1.0, 2.0, rate=0.1),))
        net, fid, samples = _run_fluid(faults, seconds=3.0, cwnd=40.0)
        clean_net, clean_fid, clean_samples = _run_fluid(None, seconds=3.0,
                                                         cwnd=40.0)
        during = np.mean([g for t, g, _, _ in samples if 1.5 <= t < 3.0])
        clean = np.mean([g for t, g, _, _ in clean_samples if 1.5 <= t < 3.0])
        assert during == pytest.approx(clean, rel=0.01)  # goodput kept
        assert net._flows[fid].total_lost_pkts > \
            clean_net._flows[clean_fid].total_lost_pkts

    def test_identical_seeds_are_bit_identical(self):
        faults = FaultSchedule.sample(4.0, seed=11)
        _, _, a = _run_fluid(faults)
        _, _, b = _run_fluid(faults)
        assert a == b


class TestPacketEngine:
    def test_blackout_reduces_delivery_and_is_deterministic(self):
        faults = FaultSchedule((Blackout(1.0, 1.0),))

        def run(faults):
            net = PacketNetwork(LINK, seed=0, faults=faults)
            fid = net.add_flow(base_rtt_s=0.030, cwnd=100.0)
            net.run(4.0)
            s = net.stats(fid)
            return s.sent, s.delivered, s.lost, s.avg_rtt_s

        faulted_a = run(faults)
        faulted_b = run(faults)
        clean = run(None)
        assert faulted_a == faulted_b  # deterministic per seed
        # A 1 s outage on a 4 s run removes roughly a quarter of service.
        assert faulted_a[1] < 0.85 * clean[1]

    def test_loss_burst_and_delay_spike(self):
        faults = FaultSchedule((LossBurst(0.5, 2.0, loss_rate=0.2),))
        net = PacketNetwork(LINK, seed=0, faults=faults)
        fid = net.add_flow(base_rtt_s=0.030, cwnd=20.0)
        net.run(3.0)
        assert net.stats(fid).lost > 0

        faults = FaultSchedule((DelaySpike(0.0, 3.0, extra_ms=60.0),))
        net = PacketNetwork(LINK, seed=0, faults=faults)
        fid = net.add_flow(base_rtt_s=0.030, cwnd=5.0)
        net.run(3.0)
        assert net.stats(fid).avg_rtt_s == pytest.approx(0.090, rel=0.1)


class TestScenarioIntegration:
    def test_scenario_config_validates_faults(self):
        link = LinkConfig(bandwidth_mbps=20.0, rtt_ms=30.0, buffer_bdp=1.0)
        from repro.config import FlowConfig

        flows = (FlowConfig(cc="cubic", start_s=0.0),)
        sc = ScenarioConfig(link=link, flows=flows, duration_s=5.0,
                            faults=FaultSchedule((Blackout(1.0, 0.5),)))
        assert sc.faults
        with pytest.raises(ConfigError):
            ScenarioConfig(link=link, flows=flows, duration_s=5.0,
                           faults="blackout at noon")

    def test_run_scenario_applies_faults(self):
        from repro.bench.scenarios import robustness_scenario
        from repro.env import run_scenario

        scenario = robustness_scenario("cubic", kind="blackout", quick=True)
        result = run_scenario(scenario)
        assert len(result.flows) == 2
        # The blackout window (t in [12, 12.9)) shows up as a throughput
        # hole in the per-interval logs.
        log = result.flows[0]
        during = [thr for t, thr in zip(log.times, log.throughput_mbps)
                  if 12.3 <= t < 12.9]
        after = [thr for t, thr in zip(log.times, log.throughput_mbps)
                 if t >= 20.0]
        assert during and max(during) < 1.0
        assert np.mean(after) > 10.0

    def test_robustness_family_builders(self):
        from repro.bench.scenarios import ROBUSTNESS_KINDS, robustness_scenario

        for kind in ROBUSTNESS_KINDS:
            sc = robustness_scenario("cubic", kind=kind, quick=True, seed=2)
            assert sc.faults is not None and sc.faults
            assert sc.faults.end_s <= sc.duration_s
        with pytest.raises(ConfigError):
            robustness_scenario("cubic", kind="earthquake")

    def test_scenario_json_round_trip(self):
        from repro.bench.scenarios import robustness_scenario
        from repro.persist import scenario_from_dict, scenario_to_dict

        sc = robustness_scenario("cubic", kind="mixed", quick=True, seed=5)
        again = scenario_from_dict(scenario_to_dict(sc))
        assert again.faults == sc.faults


class TestEdgeWindows:
    """Faults at t=0, faults outliving the episode, sub-MTP windows.

    Every edge placement must yield well-defined, finite statistics on
    BOTH engines — and a well-defined recovery report downstream.
    """

    def _run_packet(self, faults, seconds=4.0, cwnd=100.0, seed=0):
        net = PacketNetwork(LINK, seed=seed, faults=faults)
        fid = net.add_flow(base_rtt_s=0.030, cwnd=cwnd)
        net.run(seconds)
        return net.stats(fid)

    # -- fault starting at t = 0 ------------------------------------

    def test_blackout_at_zero_fluid(self):
        faults = FaultSchedule((Blackout(0.0, 0.5),))
        net, fid, samples = _run_fluid(faults)
        during = [g for t, g, _, _ in samples if t < 0.5]
        after = [g for t, g, _, _ in samples if t >= 2.0]
        assert max(during) == pytest.approx(0.0, abs=1e-9)
        assert np.mean(after) > 100.0
        assert np.isfinite([r for _, _, r, _ in samples]).all()

    def test_blackout_at_zero_packet(self):
        stats = self._run_packet(FaultSchedule((Blackout(0.0, 0.5),)))
        assert stats.delivered > 0          # service resumed after t=0.5
        assert np.isfinite(stats.avg_rtt_s)
        assert stats.sent >= stats.delivered

    # -- fault extending past the episode end -----------------------

    def test_fault_outliving_run_fluid(self):
        faults = FaultSchedule((Blackout(3.0, 10.0),))
        net, fid, samples = _run_fluid(faults)  # 4 s run, fault to t=13
        tail = [g for t, g, _, _ in samples if t >= 3.2]
        head = [g for t, g, _, _ in samples if 1.0 <= t < 3.0]
        assert max(tail) == pytest.approx(0.0, abs=1e-9)
        assert np.mean(head) > 100.0
        assert np.isfinite([r for _, _, r, _ in samples]).all()

    def test_fault_outliving_run_packet(self):
        faulted = self._run_packet(FaultSchedule((Blackout(3.0, 10.0),)))
        clean = self._run_packet(None)
        # The last quarter of service is gone, nothing else breaks.
        assert 0 < faulted.delivered < 0.85 * clean.delivered
        assert np.isfinite(faulted.avg_rtt_s)

    # -- fault window shorter than one MTP --------------------------

    def test_sub_mtp_fault_fluid(self):
        # 10 ms burst < 30 ms MTP: still visible as loss, nothing NaN.
        faults = FaultSchedule((LossBurst(1.0, 0.010, loss_rate=0.5),))
        net, fid, samples = _run_fluid(faults, cwnd=40.0)
        assert net._flows[fid].total_lost_pkts > 0
        assert np.isfinite([g for _, g, _, _ in samples]).all()

    def test_sub_mtp_fault_packet(self):
        faulted = self._run_packet(
            FaultSchedule((LossBurst(1.0, 0.010, loss_rate=0.5),)),
            cwnd=20.0)
        clean = self._run_packet(None, cwnd=20.0)
        assert faulted.lost >= clean.lost
        assert faulted.delivered > 0
        assert np.isfinite(faulted.avg_rtt_s)

    # -- downstream: recovery reports stay well-defined --------------

    @pytest.mark.parametrize("engine", ["fluid", "packet"])
    @pytest.mark.parametrize("faults", [
        FaultSchedule((Blackout(0.0, 0.9),)),
        FaultSchedule((Blackout(25.0, 30.0),)),
        FaultSchedule((LossBurst(12.0, 0.010, loss_rate=0.5),)),
    ], ids=["at-zero", "past-end", "sub-mtp"])
    def test_recovery_report_well_defined(self, engine, faults):
        from dataclasses import replace

        from repro.bench.robustness import run_engine_scenario
        from repro.bench.scenarios import robustness_scenario
        from repro.metrics.recovery import recovery_report

        sc = replace(robustness_scenario("cubic", kind="blackout",
                                         quick=True), faults=faults)
        rep = recovery_report(run_engine_scenario(sc, engine), faults)
        # Finite where promised; the sentinel (inf) only for recovery
        # times, never NaN leaking out of edge windows.
        assert np.isfinite(rep.baseline_mbps)
        assert np.isfinite(rep.peak_rtt_overshoot_ms)
        assert np.isfinite(rep.goodput_lost_mbit)
        assert rep.goodput_lost_mbit >= 0.0
        assert not np.isnan(rep.recovery_time_s)
        if faults.events[0].end_s >= sc.duration_s:
            assert not rep.recovered  # no post-fault window to recover in
        else:
            assert rep.recovered
