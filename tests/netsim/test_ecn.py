"""ECN: marking qdiscs, engine accounting, and ECN-reactive CUBIC."""

from __future__ import annotations

import pytest

from repro.config import FlowConfig, LinkConfig, ScenarioConfig
from repro.env import run_scenario
from repro.netsim import FluidNetwork
from repro.netsim.qdisc import CoDel, Red
from repro.netsim.stats import MtpStats


class TestMarkingQdiscs:
    def test_red_ecn_marks_instead_of_dropping(self):
        red = Red(min_th_pkts=50, max_th_pkts=150, max_p=0.1, ewma=1.0,
                  ecn=True)
        assert red.drop_fraction(100.0, 0.01, 0.0, 0.002) == 0.0
        assert red.mark_fraction(100.0, 0.01, 0.0, 0.002) == \
            pytest.approx(0.05)

    def test_red_drop_mode_never_marks(self):
        red = Red(ewma=1.0)
        red.drop_fraction(100.0, 0.01, 0.0, 0.002)
        assert red.mark_fraction(100.0, 0.01, 0.0, 0.002) == 0.0

    def test_codel_ecn_marks(self):
        codel = CoDel(target_s=0.005, interval_s=0.1, ecn=True)
        codel.mark_fraction(100.0, 0.02, 0.0, 0.002)
        assert codel.mark_fraction(100.0, 0.02, 0.2, 0.002) > 0.0
        assert codel.drop_fraction(100.0, 0.02, 0.3, 0.002) == 0.0


class TestEngineMarking:
    def test_marks_flow_through_to_monitor(self):
        link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=4.0,
                          qdisc="red",
                          qdisc_kwargs={"min_th_pkts": 20.0,
                                        "max_th_pkts": 100.0,
                                        "max_p": 0.3, "ecn": True})
        net = FluidNetwork(link)
        fid = net.add_flow(base_rtt_s=0.030, cwnd_pkts=400.0)
        for _ in range(3000):
            net.advance(0.002)
        stats = net.monitor(fid).collect(net.now, 400.0, 0.0, 300.0)
        assert stats.marked_pkts > 0.0
        assert stats.mark_rate > 0.0
        # ECN marks congestion without dropping.
        assert stats.lost_pkts == pytest.approx(0.0)

    def test_no_marks_under_droptail(self):
        net = FluidNetwork(LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0))
        fid = net.add_flow(base_rtt_s=0.030, cwnd_pkts=400.0)
        for _ in range(1000):
            net.advance(0.002)
        stats = net.monitor(fid).collect(net.now, 400.0, 0.0, 300.0)
        assert stats.marked_pkts == 0.0


class TestMtpStatsMarkRate:
    def test_mark_rate(self):
        stats = MtpStats(time_s=1.0, duration_s=0.03, throughput_pps=1000.0,
                         avg_rtt_s=0.03, min_rtt_s=0.03, sent_pkts=30.0,
                         delivered_pkts=30.0, lost_pkts=0.0,
                         pkts_in_flight=25.0, cwnd_pkts=30.0,
                         pacing_pps=1000.0, srtt_s=0.03, marked_pkts=3.0)
        assert stats.mark_rate == pytest.approx(0.1)

    def test_mark_rate_zero_when_nothing_delivered(self):
        stats = MtpStats(time_s=1.0, duration_s=0.03, throughput_pps=0.0,
                         avg_rtt_s=0.03, min_rtt_s=0.03, sent_pkts=0.0,
                         delivered_pkts=0.0, lost_pkts=0.0,
                         pkts_in_flight=0.0, cwnd_pkts=10.0,
                         pacing_pps=0.0, srtt_s=0.03, marked_pkts=0.0)
        assert stats.mark_rate == 0.0


class TestEcnCubic:
    def test_ecn_cubic_backs_off_on_marks_without_loss(self):
        link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=4.0,
                          qdisc="codel",
                          qdisc_kwargs={"target_s": 0.005, "ecn": True})
        scenario = ScenarioConfig(
            link=link,
            flows=(FlowConfig(cc="cubic", cc_kwargs={"ecn": True}),),
            duration_s=15.0,
        )
        result = run_scenario(scenario)
        # Congestion controlled via marks: near-zero loss, bounded delay,
        # still high utilisation.
        assert result.mean_loss_rate(5.0) < 0.001
        assert result.mean_rtt_s(5.0) < 0.030 * 1.6
        assert result.utilization(5.0) > 0.85

    def test_plain_cubic_ignores_marks(self):
        from repro.cc import Cubic
        from tests.cc.test_base import make_stats

        plain = Cubic(ecn=False)
        plain.cwnd = 100.0
        plain.ssthresh = 50.0
        plain.on_interval(make_stats(marked_pkts=10.0, delivered_pkts=30.0))
        assert plain.cwnd >= 100.0

    def test_ecn_cubic_reduces_on_marks(self):
        from repro.cc import Cubic
        from tests.cc.test_base import make_stats

        ecn = Cubic(ecn=True)
        ecn.cwnd = 100.0
        ecn.ssthresh = 50.0
        ecn.on_interval(make_stats(marked_pkts=10.0, delivered_pkts=30.0))
        assert ecn.cwnd == pytest.approx(70.0)
