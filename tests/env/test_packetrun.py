"""Packet-engine scenario runner: flow windows and trace rejection."""

from __future__ import annotations

import pytest

from repro.config import FlowConfig, LinkConfig, ScenarioConfig
from repro.env.packetrun import run_scenario_packet
from repro.errors import SimulationError
from repro.scenarios import build_scenario


def link():
    return LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0, buffer_bdp=2.0)


class TestFlowWindows:
    def test_staggered_arrival_runs_and_logs_inside_window(self):
        scenario = ScenarioConfig(
            link=link(),
            flows=(FlowConfig(cc="cubic", start_s=0.0),
                   FlowConfig(cc="cubic", start_s=4.0, duration_s=4.0)),
            duration_s=10.0, seed=0)
        result = run_scenario_packet(scenario)
        late = result.flows[1]
        assert late.start_s == 4.0 and late.end_s == 8.0
        assert late.times, "late flow produced no records"
        assert min(late.times) >= 4.0
        # The final control window flushes on the first MTP tick at or
        # after the stop, so the last record may trail by one interval.
        assert max(late.times) <= 8.0 + scenario.mtp_s + 1e-9
        assert max(late.throughput_mbps) > 0

    def test_incumbent_yields_during_the_late_flow(self):
        import numpy as np

        scenario = ScenarioConfig(
            link=link(),
            flows=(FlowConfig(cc="cubic", start_s=0.0),
                   FlowConfig(cc="cubic", start_s=4.0, duration_s=4.0)),
            duration_s=10.0, seed=0)
        result = run_scenario_packet(scenario)
        first = result.flows[0]
        t = np.asarray(first.times)
        thr = np.asarray(first.throughput_mbps)
        alone = thr[(t > 2.0) & (t <= 4.0)].mean()
        shared = thr[(t > 5.0) & (t <= 8.0)].mean()
        # CUBIC converges slowly against a queue-owning incumbent, so
        # only a modest share moves in 4 s — but it must move.
        assert shared < 0.95 * alone

    def test_incast_family_runs_on_the_packet_engine(self):
        scenario = build_scenario("incast", cc="cubic", quick=True, seed=0,
                                  n_senders=3)
        result = run_scenario_packet(scenario)
        assert len(result.flows) == len(scenario.flows)
        assert all(f.times for f in result.flows)

    def test_traced_scenario_still_rejected(self):
        scenario = build_scenario("fig13", cc="cubic", quick=True)
        with pytest.raises(SimulationError, match="capacity traces"):
            run_scenario_packet(scenario)
