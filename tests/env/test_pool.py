"""Parallel environment pool (Appendix A)."""

from __future__ import annotations

import pytest

from repro.config import (
    LinkConfig,
    ScenarioConfig,
    TrainingConfig,
    replace,
)
from repro.core.learner import Learner
from repro.env.pool import EnvironmentPool
from repro.netsim import staggered_flows

SMALL = replace(TrainingConfig(), hidden_layers=(16, 16), batch_size=16,
                warmup_transitions=50, update_steps=2,
                update_interval_s=2.0)


def scenario(bw=100.0, duration=6.0):
    return ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=bw, rtt_ms=30.0, buffer_bdp=1.0),
        flows=staggered_flows(2, cc="astraea", interval_s=1.0,
                              duration_s=duration - 1.0),
        duration_s=duration,
    )


class TestEnvironmentPool:
    def test_collects_from_all_instances(self):
        learner = Learner(SMALL)
        pool = EnvironmentPool(
            learner, [scenario(100.0), scenario(50.0)], noise_std=0.1,
            initial_cwnds=[[30.0, 30.0], [20.0, 20.0]])
        stats = pool.run()
        single = 0
        # A single instance of the same shape yields roughly half the
        # transitions the pool collects.
        learner2 = Learner(SMALL)
        pool2 = EnvironmentPool(learner2, [scenario(100.0)], noise_std=0.1,
                                initial_cwnds=[[30.0, 30.0]])
        single = pool2.run().transitions
        assert stats.transitions > 1.5 * single

    def test_updates_fire_on_pooled_clock(self):
        learner = Learner(SMALL)
        pool = EnvironmentPool(learner, [scenario(), scenario(60.0)],
                               noise_std=0.1,
                               initial_cwnds=[[30.0, 30.0], [30.0, 30.0]])
        stats = pool.run()
        # 6 s episodes with a 2 s interval: at least two bursts.
        assert stats.update_bursts >= 2
        assert learner.total_updates >= 2 * SMALL.update_steps

    def test_instances_of_different_lengths(self):
        learner = Learner(SMALL)
        pool = EnvironmentPool(learner,
                               [scenario(duration=4.0),
                                scenario(duration=8.0)],
                               noise_std=0.1,
                               initial_cwnds=[[30.0, 30.0], [30.0, 30.0]])
        stats = pool.run()
        assert stats.transitions > 0

    def test_rejects_mismatched_cwnds(self):
        learner = Learner(SMALL)
        with pytest.raises(ValueError):
            EnvironmentPool(learner, [scenario()], noise_std=0.1,
                            initial_cwnds=[])

    def test_cross_traffic_instances_supported(self):
        from repro.config import FlowConfig

        learner = Learner(SMALL)
        sc = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                            buffer_bdp=1.0),
            flows=(FlowConfig(cc="astraea", duration_s=5.0),
                   FlowConfig(cc="cubic", duration_s=5.0)),
            duration_s=6.0,
        )
        pool = EnvironmentPool(learner, [sc], noise_std=0.1,
                               initial_cwnds=[[30.0, 10.0]])
        stats = pool.run()
        assert stats.transitions > 0


class TestPoolRobustness:
    def test_stats_aggregate_across_observers(self):
        learner = Learner(SMALL)
        pool = EnvironmentPool(
            learner, [scenario(100.0), scenario(50.0)], noise_std=0.1,
            initial_cwnds=[[30.0, 30.0], [30.0, 30.0]])
        combined = pool.run()
        per = [o.stats for o in pool._observers]
        assert combined.transitions == sum(s.transitions for s in per)
        assert combined.reward_count == sum(s.reward_count for s in per)
        assert combined.reward_sum == pytest.approx(
            sum(s.reward_sum for s in per))
        assert combined.mean_reward == pytest.approx(
            combined.reward_sum / combined.reward_count)

    def test_rejects_mismatched_episode_ids(self):
        learner = Learner(SMALL)
        with pytest.raises(ValueError):
            EnvironmentPool(learner, [scenario(), scenario(50.0)],
                            noise_std=0.1,
                            initial_cwnds=[[30.0, 30.0], [30.0, 30.0]],
                            episodes=[0])

    def test_controller_exception_propagates(self, monkeypatch):
        """The pool must not swallow failures — train_astraea's quarantine
        layer is responsible for containment, and it can only react if the
        error surfaces."""
        from repro.env.episode import TrainFlowController
        from repro.errors import SimulationError

        learner = Learner(SMALL)
        pool = EnvironmentPool(learner, [scenario()], noise_std=0.1,
                               initial_cwnds=[[30.0, 30.0]])

        def boom(self, stats):
            raise SimulationError("controller blew up mid-episode")

        monkeypatch.setattr(TrainFlowController, "on_interval", boom)
        with pytest.raises(SimulationError):
            pool.run()

    def test_episode_ids_seed_exploration_per_instance(self):
        learner = Learner(SMALL)
        pool = EnvironmentPool(
            learner, [scenario(), scenario()], noise_std=0.1,
            initial_cwnds=[[30.0, 30.0], [30.0, 30.0]],
            episodes=[4, 5])
        ctls = [d for obs in pool._observers for d in obs.controllers]
        draws = [c._rng.random() for c in ctls]
        assert len(set(draws)) == len(draws)
