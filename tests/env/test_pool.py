"""Parallel environment pool (Appendix A): frozen-policy strides."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    LinkConfig,
    ScenarioConfig,
    TrainingConfig,
    replace,
)
from repro.core.learner import Learner
from repro.env.pool import EnvironmentPool
from repro.netsim import staggered_flows

SMALL = replace(TrainingConfig(), hidden_layers=(16, 16), batch_size=16,
                warmup_transitions=50, update_steps=2,
                update_interval_s=2.0)

REPLAY_ARRAYS = ("_local", "_global", "_action", "_reward",
                 "_next_local", "_next_global", "_done")


def scenario(bw=100.0, duration=6.0):
    return ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=bw, rtt_ms=30.0, buffer_bdp=1.0),
        flows=staggered_flows(2, cc="astraea", interval_s=1.0,
                              duration_s=duration - 1.0),
        duration_s=duration,
    )


class TestEnvironmentPool:
    def test_collects_from_all_instances(self):
        learner = Learner(SMALL)
        pool = EnvironmentPool(
            learner, [scenario(100.0), scenario(50.0)], noise_std=0.1,
            initial_cwnds=[[30.0, 30.0], [20.0, 20.0]])
        stats = pool.run()
        # A single instance of the same shape yields roughly half the
        # transitions the pool collects.
        learner2 = Learner(SMALL)
        pool2 = EnvironmentPool(learner2, [scenario(100.0)], noise_std=0.1,
                                initial_cwnds=[[30.0, 30.0]])
        single = pool2.run().transitions
        assert stats.transitions > 1.5 * single

    def test_updates_fire_on_pooled_clock(self):
        learner = Learner(SMALL)
        pool = EnvironmentPool(learner, [scenario(), scenario(60.0)],
                               noise_std=0.1,
                               initial_cwnds=[[30.0, 30.0], [30.0, 30.0]])
        stats = pool.run()
        # 6 s episodes with a 2 s interval: at least two bursts.
        assert stats.update_bursts >= 2
        assert learner.total_updates >= 2 * SMALL.update_steps

    def test_instances_of_different_lengths(self):
        learner = Learner(SMALL)
        pool = EnvironmentPool(learner,
                               [scenario(duration=4.0),
                                scenario(duration=8.0)],
                               noise_std=0.1,
                               initial_cwnds=[[30.0, 30.0], [30.0, 30.0]])
        stats = pool.run()
        assert stats.transitions > 0

    def test_rejects_mismatched_cwnds(self):
        learner = Learner(SMALL)
        with pytest.raises(ValueError):
            EnvironmentPool(learner, [scenario()], noise_std=0.1,
                            initial_cwnds=[])

    def test_cross_traffic_instances_supported(self):
        from repro.config import FlowConfig

        learner = Learner(SMALL)
        sc = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                            buffer_bdp=1.0),
            flows=(FlowConfig(cc="astraea", duration_s=5.0),
                   FlowConfig(cc="cubic", duration_s=5.0)),
            duration_s=6.0,
        )
        pool = EnvironmentPool(learner, [sc], noise_std=0.1,
                               initial_cwnds=[[30.0, 10.0]])
        stats = pool.run()
        assert stats.transitions > 0


class TestPoolRobustness:
    def test_stats_aggregate_across_instances(self):
        """The pooled counters are the exact sum of per-instance episodes.

        The policy is frozen per stride, so running each scenario alone
        against a fresh (identically cold) learner reproduces exactly
        the episodes the combined stride collects.
        """
        a, b = scenario(100.0), scenario(50.0)
        single_a = EnvironmentPool(Learner(SMALL), [a], noise_std=0.1,
                                   initial_cwnds=[[30.0, 30.0]],
                                   episodes=[0]).run()
        single_b = EnvironmentPool(Learner(SMALL), [b], noise_std=0.1,
                                   initial_cwnds=[[30.0, 30.0]],
                                   episodes=[1]).run()
        combined = EnvironmentPool(
            Learner(SMALL), [a, b], noise_std=0.1,
            initial_cwnds=[[30.0, 30.0], [30.0, 30.0]],
            episodes=[0, 1]).run()
        assert combined.transitions == \
            single_a.transitions + single_b.transitions
        assert combined.reward_count == \
            single_a.reward_count + single_b.reward_count
        assert combined.reward_sum == pytest.approx(
            single_a.reward_sum + single_b.reward_sum)
        assert combined.mean_reward == pytest.approx(
            combined.reward_sum / combined.reward_count)

    def test_rejects_mismatched_episode_ids(self):
        learner = Learner(SMALL)
        with pytest.raises(ValueError):
            EnvironmentPool(learner, [scenario(), scenario(50.0)],
                            noise_std=0.1,
                            initial_cwnds=[[30.0, 30.0], [30.0, 30.0]],
                            episodes=[0])

    def test_controller_exception_quarantines_stride(self, monkeypatch):
        """The pool must not swallow failures — train_astraea's quarantine
        layer is responsible for containment, and it can only react if the
        error surfaces.  Nothing from a failed stride may reach replay."""
        from repro.env.episode import TrainFlowController
        from repro.errors import SimulationError

        learner = Learner(SMALL)
        pool = EnvironmentPool(learner, [scenario()], noise_std=0.1,
                               initial_cwnds=[[30.0, 30.0]])

        def boom(self, stats):
            raise SimulationError("controller blew up mid-episode")

        monkeypatch.setattr(TrainFlowController, "begin_interval", boom)
        with pytest.raises(SimulationError):
            pool.run()
        assert len(learner.replay) == 0

    def test_episode_ids_seed_exploration_per_instance(self):
        from repro.env.episode import build_training_controllers

        learner = Learner(SMALL)
        ctls = [
            c
            for episode in (4, 5)
            for c in build_training_controllers(
                learner, scenario(), noise_std=0.1,
                initial_cwnds=[30.0, 30.0], episode=episode)
        ]
        draws = [c._rng.random() for c in ctls]
        assert len(set(draws)) == len(draws)


class TestWorkerEquivalence:
    def test_workers_match_serial_bitwise(self):
        """A stride on 2 pool workers is bit-identical to the in-process
        run: same counters, same replay contents and cursor, same actor
        parameters afterwards."""
        def run(workers):
            learner = Learner(SMALL)
            stats = EnvironmentPool(
                learner, [scenario(duration=4.0), scenario(50.0, 4.0)],
                noise_std=0.1,
                initial_cwnds=[[30.0, 30.0], [20.0, 20.0]],
                episodes=[2, 3], workers=workers).run()
            return learner, stats

        serial_learner, serial_stats = run(1)
        pooled_learner, pooled_stats = run(2)
        assert serial_stats.transitions == pooled_stats.transitions
        assert serial_stats.reward_sum == pooled_stats.reward_sum
        assert serial_stats.update_bursts == pooled_stats.update_bursts
        assert len(serial_learner.replay) == len(pooled_learner.replay)
        assert serial_learner.replay._cursor == pooled_learner.replay._cursor
        for name in REPLAY_ARRAYS:
            assert np.array_equal(getattr(serial_learner.replay, name),
                                  getattr(pooled_learner.replay, name))
        for p_s, p_w in zip(serial_learner.td3.actor.get_state(),
                            pooled_learner.td3.actor.get_state()):
            assert np.array_equal(p_s, p_w)
