"""Steppable scenario driver semantics."""

from __future__ import annotations

import pytest

from repro.config import FlowConfig, LinkConfig, ScenarioConfig
from repro.env import build_driver, run_scenario


def tiny(duration=4.0):
    return ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0, buffer_bdp=1.0),
        flows=(FlowConfig(cc="cubic", duration_s=duration - 1.0),),
        duration_s=duration,
    )


class TestScenarioDriver:
    def test_step_advances_one_tick(self):
        driver = build_driver(tiny())
        t0 = driver.now
        assert driver.step()
        assert driver.now == pytest.approx(t0 + 0.002)

    def test_done_after_duration(self):
        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0),
            flows=(FlowConfig(cc="cubic"),),
            duration_s=1.0,
        )
        driver = build_driver(scenario)
        steps = 0
        while driver.step():
            steps += 1
        assert driver.done
        assert not driver.step()          # idempotent once finished
        assert steps <= int(1.0 / 0.002) + 2

    def test_partial_result_readable_midway(self):
        driver = build_driver(tiny())
        for _ in range(600):               # 1.2 s
            driver.step()
        partial = driver.result()
        assert 0 < len(partial.flows[0].times)
        assert max(partial.flows[0].times) <= 1.3

    def test_matches_run_scenario(self):
        scenario = tiny()
        direct = run_scenario(scenario)
        driver = build_driver(scenario)
        while driver.step():
            pass
        stepped = driver.result()
        assert stepped.flows[0].times == direct.flows[0].times
        assert stepped.flows[0].throughput_mbps == \
            direct.flows[0].throughput_mbps

    def test_early_finish_when_flows_end(self):
        driver = build_driver(tiny(duration=100.0))
        # The only flow stops at 99 s... use a short-lived flow instead.
        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0),
            flows=(FlowConfig(cc="cubic", duration_s=1.0),),
            duration_s=100.0,
        )
        driver = build_driver(scenario)
        steps = 0
        while driver.step():
            steps += 1
        # Finishes shortly after the flow ends, not after 100 s.
        assert driver.now < 2.0
