"""Cross-feature integration: traces x qdiscs x schemes in one harness.

Smoke-level end-to-end coverage of feature combinations no other test
exercises together; each run is short but must produce sane, internally
consistent results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FlowConfig, LinkConfig, ScenarioConfig
from repro.env import run_scenario


def run(cc="cubic", trace=None, trace_kwargs=None, qdisc="droptail",
        qdisc_kwargs=None, loss=0.0, duration=8.0, n=1, bw=50.0, rtt=25.0):
    link = LinkConfig(bandwidth_mbps=bw, rtt_ms=rtt, buffer_bdp=2.0,
                      random_loss=loss, qdisc=qdisc,
                      qdisc_kwargs=qdisc_kwargs or {})
    flows = tuple(FlowConfig(cc=cc) for _ in range(n))
    scenario = ScenarioConfig(link=link, flows=flows, duration_s=duration,
                              trace=trace, trace_kwargs=trace_kwargs or {})
    return run_scenario(scenario)


CASES = [
    ("cubic", "wifi", {"seed": 1, "duration_s": 30.0}, "droptail", {}),
    ("bbr", "diurnal", {"period_s": 10.0, "low_mbps": 10.0,
                        "high_mbps": 50.0}, "droptail", {}),
    ("vegas", "lte", {"seed": 2}, "droptail", {}),
    ("astraea-ref", None, None, "red",
     {"min_th_pkts": 20.0, "max_th_pkts": 80.0}),
    ("astraea", None, None, "codel", {"target_s": 0.01}),
    ("reno", "step", {"steps": [(0.0, 50.0), (4.0, 10.0)]}, "droptail", {}),
]


@pytest.mark.parametrize("cc,trace,trace_kwargs,qdisc,qdisc_kwargs", CASES,
                         ids=[f"{c[0]}-{c[1]}-{c[3]}" for c in CASES])
def test_combo_runs_and_is_consistent(cc, trace, trace_kwargs, qdisc,
                                      qdisc_kwargs):
    result = run(cc=cc, trace=trace, trace_kwargs=trace_kwargs,
                 qdisc=qdisc, qdisc_kwargs=qdisc_kwargs)
    flow = result.flows[0].as_arrays()
    assert len(flow["times"]) > 50
    assert np.all(np.isfinite(flow["throughput_mbps"]))
    assert np.all(flow["throughput_mbps"] >= 0.0)
    assert np.all(flow["rtt_s"] >= 0.02)          # never below base RTT
    assert np.all(flow["cwnd_pkts"] >= 1.0)
    assert np.all((flow["loss_rate"] >= 0.0) & (flow["loss_rate"] <= 1.0))
    # Something actually got through.
    assert result.flows[0].as_arrays()["throughput_mbps"].max() > 1.0


def test_two_schemes_share_trace_driven_link():
    """Mixed schemes on a varying link: totals never exceed capacity."""
    link = LinkConfig(bandwidth_mbps=50.0, rtt_ms=25.0, buffer_bdp=2.0)
    scenario = ScenarioConfig(
        link=link,
        flows=(FlowConfig(cc="astraea-ref"), FlowConfig(cc="cubic")),
        duration_s=10.0,
        trace="diurnal",
        trace_kwargs={"low_mbps": 20.0, "high_mbps": 50.0,
                      "period_s": 8.0},
    )
    result = run_scenario(scenario)
    times, matrix, active = result.throughput_matrix(0.5)
    from repro.netsim.traces import DiurnalTrace

    trace = DiurnalTrace(low_mbps=20.0, high_mbps=50.0, period_s=8.0)
    capacity = np.array([trace.capacity_mbps(t) for t in times])
    total = (matrix * active).sum(axis=0)
    # Delivered aggregate tracks under (smoothed) capacity; small overshoot
    # allowance for queue drain after capacity dips.
    assert np.mean(total[5:] <= capacity[5:] * 1.3) > 0.9
