"""Training-episode collection: observer, transitions, rewards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    FlowConfig,
    LinkConfig,
    ScenarioConfig,
    TrainingConfig,
    replace,
)
from repro.core.learner import Learner
from repro.env.episode import TrainFlowController, run_training_episode
from repro.netsim import staggered_flows

SMALL = replace(TrainingConfig(), hidden_layers=(16, 16), batch_size=16,
                warmup_transitions=50, update_steps=2)
LINK = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)


def episode_scenario(n=2, duration=6.0):
    return ScenarioConfig(
        link=LINK,
        flows=staggered_flows(n, cc="astraea", interval_s=1.0,
                              duration_s=duration - 1.0),
        duration_s=duration,
    )


class TestTrainController:
    def test_respects_alpha_bound(self):
        learner = Learner(SMALL)
        ctl = TrainFlowController(learner, noise_std=1.0, initial_cwnd=50.0)
        from tests.cc.test_base import make_stats

        prev = ctl.cwnd
        for i in range(10):
            d = ctl.on_interval(make_stats(time_s=(i + 1) * 0.03))
            assert d.cwnd_pkts <= prev * 1.025 + 1e-9
            prev = d.cwnd_pkts

    def test_randomised_initial_cwnd(self):
        learner = Learner(SMALL)
        ctl = TrainFlowController(learner, initial_cwnd=77.0)
        assert ctl.initial_cwnd == 77.0
        assert ctl.cwnd == 77.0

    def test_records_state_action(self):
        learner = Learner(SMALL)
        ctl = TrainFlowController(learner)
        from tests.cc.test_base import make_stats

        ctl.on_interval(make_stats())
        assert ctl.last_state is not None
        assert -1.0 <= ctl.last_action <= 1.0


class TestEpisode:
    def test_collects_transitions(self):
        learner = Learner(SMALL)
        stats = run_training_episode(learner, episode_scenario(),
                                     noise_std=0.1,
                                     initial_cwnds=[30.0, 30.0])
        assert stats.transitions > 100
        assert len(learner.replay) == stats.transitions

    def test_rewards_bounded(self):
        learner = Learner(SMALL)
        stats = run_training_episode(learner, episode_scenario(),
                                     noise_std=0.1,
                                     initial_cwnds=[30.0, 30.0])
        assert -0.1 <= stats.mean_reward <= 0.1

    def test_updates_fire_on_cadence(self):
        cfg = replace(SMALL, update_interval_s=2.0)
        learner = Learner(cfg)
        stats = run_training_episode(learner, episode_scenario(duration=7.0),
                                     noise_std=0.1,
                                     initial_cwnds=[30.0, 30.0])
        assert stats.update_bursts >= 2
        assert learner.total_updates >= 2 * cfg.update_steps

    def test_no_updates_when_disabled(self):
        learner = Learner(SMALL)
        run_training_episode(learner, episode_scenario(), noise_std=0.1,
                             initial_cwnds=[30.0, 30.0], do_updates=False)
        assert learner.total_updates == 0

    def test_local_reward_path(self):
        learner = Learner(SMALL)
        seen = []

        def local_reward(stats, link):
            seen.append(stats)
            return 0.05

        ep = run_training_episode(learner, episode_scenario(n=1),
                                  noise_std=0.1, initial_cwnds=[30.0],
                                  local_reward=local_reward)
        assert seen
        assert ep.mean_reward == pytest.approx(0.05)

    def test_fair_outcome_scores_higher_than_starved(self):
        """Global reward must rank a fair equilibrium above a starved one —
        the property that makes multi-agent training optimise fairness."""
        learner = Learner(SMALL)

        # Fair: two equal astraea-ref flows.
        fair = ScenarioConfig(
            link=LINK,
            flows=staggered_flows(2, cc="astraea", interval_s=0.0),
            duration_s=8.0,
        )
        fair_stats = run_training_episode(
            learner, fair, noise_std=0.0, initial_cwnds=[125.0, 125.0],
            do_updates=False)

        # Starved: one giant window, one pinned tiny window.
        starved_stats = run_training_episode(
            learner, fair, noise_std=0.0, initial_cwnds=[450.0, 2.0],
            do_updates=False)
        assert fair_stats.mean_reward > starved_stats.mean_reward


class TestDeterminism:
    def test_back_to_back_same_seed_runs_are_bit_identical(self):
        """Regression: the exploration RNG must derive from (seed, episode,
        flow index), not from a process-global controller counter — the
        second same-seed run in one process used to diverge from the first,
        which also broke bit-exact checkpoint resume."""

        def run_once():
            learner = Learner(SMALL)
            run_training_episode(learner, episode_scenario(), noise_std=0.1,
                                 initial_cwnds=[30.0, 30.0], episode=0)
            return learner

        a = run_once()
        b = run_once()
        n = len(a.replay)
        assert n == len(b.replay) > 0
        np.testing.assert_array_equal(a.replay._local[:n],
                                      b.replay._local[:n])
        np.testing.assert_array_equal(a.replay._action[:n],
                                      b.replay._action[:n])
        for x, y in zip(a.td3.actor.parameters(), b.td3.actor.parameters()):
            np.testing.assert_array_equal(x, y)

    def test_distinct_episode_and_flow_ids_decorrelate_exploration(self):
        learner = Learner(SMALL)
        base = TrainFlowController(learner, episode=0, flow_index=0)
        other_ep = TrainFlowController(learner, episode=1, flow_index=0)
        other_flow = TrainFlowController(learner, episode=0, flow_index=1)
        draws = {c._rng.random() for c in (base, other_ep, other_flow)}
        assert len(draws) == 3


class TestObserverGuards:
    def test_skips_controller_that_has_no_state_yet(self):
        """A controller observed before its first on_interval has
        ``last_state is None``; the Observer must skip it rather than
        poison a transition tuple."""
        from repro.env.episode import Observer
        from tests.cc.test_base import make_stats

        learner = Learner(SMALL)
        ctl = TrainFlowController(learner, initial_cwnd=30.0)
        flows = (FlowConfig(cc="astraea", duration_s=100.0),)
        obs = Observer(learner, LINK, flows, [ctl])

        obs(1.0, 0, make_stats(time_s=1.0), ctl)  # last_state is None
        assert obs.stats.transitions == 0
        assert len(learner.replay) == 0

        # Once the controller produces states, transitions resume.
        ctl.on_interval(make_stats(time_s=1.03))
        obs(1.03, 0, make_stats(time_s=1.03), ctl)
        ctl.on_interval(make_stats(time_s=1.06))
        obs(1.06, 0, make_stats(time_s=1.06), ctl)
        assert obs.stats.transitions == 1
        assert len(learner.replay) == 1

    def test_reset_mid_episode_drops_stale_pending_pair(self):
        from repro.env.episode import Observer
        from tests.cc.test_base import make_stats

        learner = Learner(SMALL)
        ctl = TrainFlowController(learner, initial_cwnd=30.0)
        flows = (FlowConfig(cc="astraea", duration_s=100.0),)
        obs = Observer(learner, LINK, flows, [ctl])

        ctl.on_interval(make_stats(time_s=1.0))
        obs(1.0, 0, make_stats(time_s=1.0), ctl)      # seeds pending
        ctl.reset()                                   # last_state -> None
        obs(1.03, 0, make_stats(time_s=1.03), ctl)    # must drop pending
        assert obs.stats.transitions == 0

        ctl.on_interval(make_stats(time_s=1.06))
        obs(1.06, 0, make_stats(time_s=1.06), ctl)
        assert obs.stats.transitions == 0  # pending re-seeded, not paired
