"""Scenario runner: lifecycle, logging, result analytics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FlowConfig, LinkConfig, ScenarioConfig
from repro.env import run_scenario, run_topology
from repro.errors import SimulationError
from repro.netsim import staggered_flows
from repro.netsim.topology import parking_lot


LINK = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)


class TestLifecycle:
    def test_flow_logs_respect_start_and_end(self):
        scenario = ScenarioConfig(
            link=LINK,
            flows=(FlowConfig(cc="cubic", start_s=0.0, duration_s=8.0),
                   FlowConfig(cc="cubic", start_s=4.0, duration_s=8.0)),
            duration_s=15.0,
        )
        result = run_scenario(scenario)
        t0 = np.asarray(result.flows[0].times)
        t1 = np.asarray(result.flows[1].times)
        assert t0.min() < 0.2
        assert t0.max() <= 8.0 + 0.1
        assert t1.min() >= 4.0
        assert t1.max() <= 12.0 + 0.1

    def test_simulation_stops_when_no_flows_remain(self):
        scenario = ScenarioConfig(
            link=LINK,
            flows=(FlowConfig(cc="cubic", start_s=0.0, duration_s=2.0),),
            duration_s=100.0,
        )
        result = run_scenario(scenario)  # returns promptly
        assert np.asarray(result.flows[0].times).max() <= 2.1

    def test_on_interval_hook_sees_every_decision(self):
        calls = []
        scenario = ScenarioConfig(
            link=LINK,
            flows=(FlowConfig(cc="cubic", start_s=0.0),),
            duration_s=3.0,
        )
        run_scenario(scenario, on_interval=lambda now, i, s, c:
                     calls.append((now, i)))
        assert len(calls) == len(run_scenario(scenario).flows[0].times)
        assert all(i == 0 for _, i in calls)

    def test_injected_controllers_used(self):
        from repro.cc import Decision
        from repro.cc.base import CongestionController

        class Fixed(CongestionController):
            def on_interval(self, stats):
                return Decision(cwnd_pkts=50.0)

        scenario = ScenarioConfig(
            link=LINK,
            flows=(FlowConfig(cc="cubic", start_s=0.0),),
            duration_s=3.0,
        )
        result = run_scenario(scenario, controllers=[Fixed()])
        assert np.allclose(result.flows[0].cwnd_pkts, 50.0)


class TestResultAnalytics:
    def test_throughput_matrix_shape(self, reference_three_flow_result):
        t, m, a = reference_three_flow_result.throughput_matrix(0.5)
        assert m.shape == (3, len(t))
        assert a.shape == m.shape

    def test_active_mask_matches_lifetimes(self, reference_three_flow_result):
        t, m, a = reference_three_flow_result.throughput_matrix(0.5)
        # Flow 1 starts at 10 s: inactive before.
        assert not a[1, t < 10.0].any()
        assert a[1, (t > 11.0) & (t < 39.0)].all()

    def test_jain_series_only_multiflow_slots(self,
                                              reference_three_flow_result):
        t, j = reference_three_flow_result.jain_series(0.5)
        assert t.min() >= 10.0          # before the 2nd flow: no Jain
        assert np.all((j > 0.3) & (j <= 1.0))

    def test_mean_jain_high_for_reference(self, reference_three_flow_result):
        assert reference_three_flow_result.mean_jain() > 0.95

    def test_utilization_reasonable(self, reference_three_flow_result):
        assert 0.9 < reference_three_flow_result.utilization() <= 1.05

    def test_flow_mean_throughput_single(self, single_cubic_result):
        thr = single_cubic_result.flow_mean_throughput(0, skip_s=3.0)
        assert thr == pytest.approx(100.0, rel=0.1)

    def test_grid_validation(self, single_cubic_result):
        with pytest.raises(SimulationError):
            single_cubic_result.throughput_matrix(0.0)


class TestTopologyRun:
    def test_parking_lot_max_min(self):
        topo = parking_lot(n_fs1=2, n_fs2=2, cc="astraea-ref",
                           duration_s=20.0)
        result = run_topology(topo)
        fs1 = [result.flow_mean_throughput(i, skip_s=8.0) for i in (0, 1)]
        fs2 = [result.flow_mean_throughput(i, skip_s=8.0) for i in (2, 3)]
        # FS-2 capped by link2 at ~10 each; FS-1 shares the rest of link1.
        assert np.mean(fs2) == pytest.approx(10.0, rel=0.25)
        assert np.mean(fs1) == pytest.approx(40.0, rel=0.25)
