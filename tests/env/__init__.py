"""Test package."""
