"""The serial-vs-parallel scaling microbenchmark and its artifact."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.scaling import BENCH_ID, run_scaling_benchmark
from repro.cli import main


class TestScalingBenchmark:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_scaling_benchmark(workers=2, schemes=("cubic",),
                                     kinds=("blackout",), engines=("fluid",),
                                     trials=1)

    def test_records_both_legs_and_environment(self, payload):
        assert payload["bench"] == BENCH_ID
        assert payload["workers"] == 2
        assert payload["cpu_count"] == os.cpu_count()
        assert payload["cells"] == 1
        assert payload["serial_s"] > 0 and payload["parallel_s"] > 0
        assert payload["speedup"] == pytest.approx(
            payload["serial_s"] / payload["parallel_s"])
        assert len(payload["cell_elapsed_serial_s"]) == 1

    def test_parallel_leg_is_deterministic(self, payload):
        assert payload["deterministic"] is True

    def test_speedup_on_multicore(self):
        # The acceptance bar — parallel beats serial — only holds where
        # there is parallel hardware; a 1-core runner pays spawn overhead
        # for nothing and legitimately reports speedup < 1.  The default
        # 4-cell smoke subset gives the pool enough work to amortise its
        # startup cost.
        if (os.cpu_count() or 1) < 2:
            pytest.skip("needs a >= 2-core runner")
        payload = run_scaling_benchmark(workers=2)
        assert payload["deterministic"] is True
        assert payload["speedup"] > 1.0

    def test_serial_worker_request_is_bumped_to_a_real_pool(self):
        payload = run_scaling_benchmark(workers=1, schemes=("cubic",),
                                        kinds=("blackout",),
                                        engines=("fluid",), trials=1)
        assert payload["workers"] == 2  # a pool of 1 would measure nothing


class TestScalingCli:
    def test_writes_bench_parallel_artifact(self, tmp_path, capsys):
        rc = main(["bench", "scaling", "--schemes", "cubic",
                   "--kinds", "blackout", "--trials", "1",
                   "--workers", "2", "--out-dir", str(tmp_path)])
        assert rc == 0
        doc = json.loads((tmp_path / f"{BENCH_ID}.json").read_text())
        assert doc["deterministic"] is True
        out = capsys.readouterr().out
        assert "speedup" in out
