"""Robustness sweep: aggregation, golden regression, report and CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.bench.robustness as robustness_mod
from repro.bench.robustness import (
    ALL_SCHEMES,
    FAULT_KINDS,
    TABLE_HEADERS,
    RecoveryCell,
    aggregate_reports,
    markdown_report,
    run_cell,
    run_engine_scenario,
    run_robustness_sweep,
    strip_timing_fields,
    table_rows,
    validate_sweep_axes,
)
from repro.bench.scenarios import robustness_scenario
from repro.cc import available
from repro.cli import main
from repro.errors import ConfigError
from repro.metrics.recovery import NEVER_RECOVERED, RecoveryReport, recovery_report


def make_report(recovery=1.0, jain=2.0, rtt=5.0, lost=10.0):
    return RecoveryReport(
        fault_start_s=12.0, fault_end_s=12.9, baseline_mbps=99.0,
        threshold=0.9, recovery_time_s=recovery, jain_reconvergence_s=jain,
        peak_rtt_overshoot_ms=rtt, goodput_lost_mbit=lost)


class TestAggregation:
    def test_means_over_finite_trials_only(self):
        reports = [make_report(recovery=2.0),
                   make_report(recovery=NEVER_RECOVERED)]
        cell = aggregate_reports("cubic", "blackout", "fluid", reports)
        assert cell.trials == 2
        assert cell.recovered == 1
        # The sentinel is excluded, not averaged into infinity.
        assert cell.recovery_time_s == pytest.approx(2.0)

    def test_all_sentinel_yields_nan_mean(self):
        reports = [make_report(recovery=NEVER_RECOVERED)] * 3
        cell = aggregate_reports("reno", "blackout", "packet", reports)
        assert cell.recovered == 0
        assert np.isnan(cell.recovery_time_s)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            aggregate_reports("cubic", "blackout", "fluid", [])

    def test_round_trips_through_json(self):
        cell = aggregate_reports("bbr", "flap", "fluid", [make_report()])
        doc = json.loads(json.dumps(cell.as_dict()))
        assert doc["scheme"] == "bbr"
        assert doc["recovered"] == 1


class TestSweepPlumbing:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ConfigError):
            run_robustness_sweep(schemes=("cubic",), kinds=("meteor",),
                                 engines=("fluid",), trials=1)

    def test_unknown_engine_rejected(self):
        sc = robustness_scenario("cubic", kind="blackout", quick=True)
        with pytest.raises(ConfigError):
            run_engine_scenario(sc, "quantum")

    def test_unknown_scheme_rejected_before_any_cell_runs(self):
        # A typo must die up front listing the known values, not minutes
        # into the sweep inside cc.create of the first affected cell.
        with pytest.raises(ConfigError, match=r"cubci.*known.*cubic"):
            run_robustness_sweep(schemes=("cubic", "cubci"),
                                 kinds=("blackout",), engines=("fluid",),
                                 trials=1)

    def test_unknown_engine_rejected_up_front(self):
        with pytest.raises(ConfigError, match=r"quantum.*known.*fluid"):
            run_robustness_sweep(schemes=("cubic",), kinds=("blackout",),
                                 engines=("fluid", "quantum"), trials=1)

    def test_validate_sweep_axes_accepts_known_values(self):
        validate_sweep_axes(ALL_SCHEMES, FAULT_KINDS, ("fluid", "packet"))
        validate_sweep_axes(ALL_SCHEMES, FAULT_KINDS, ("fluid",),
                            families=("incast", "robustness"))

    def test_validate_sweep_axes_rejects_unknown_family(self):
        with pytest.raises(ConfigError,
                           match=r"unknown scenario families.*incats"):
            validate_sweep_axes(("cubic",), ("blackout",), ("fluid",),
                                families=("incast", "incats"))

    def test_run_cell_goes_through_the_registry(self, monkeypatch):
        # The robustness sweep must build its scenarios through the
        # scenario registry (one construction path for every sweep),
        # not a private constructor.
        import repro.scenarios.registry as registry_mod

        seen = []
        original = registry_mod.ScenarioFamily.build

        def spying(self, *args, **kwargs):
            seen.append(self.name)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(registry_mod.ScenarioFamily, "build", spying)
        run_cell("cubic", "blackout", "fluid", trials=1, quick=True)
        assert seen == ["robustness"]

    def test_all_schemes_matches_registry(self):
        # The sweep's scheme list must not silently drift from the
        # registry: the report claims to cover every registered scheme
        # (minus the helpers — the reference-kernel alias and the
        # cross-traffic source, which are not comparable CC schemes).
        helpers = {"astraea-ref", "constant-rate"}
        assert sorted(ALL_SCHEMES) == sorted(set(available()) - helpers)

    def test_run_cell_policy_substitutes_matching_flows_only(self,
                                                             monkeypatch):
        # --policy diffs a candidate bundle against the shipped one on
        # the identical fault grid: every flow of the target scheme gets
        # the bundle path, cross-traffic flows stay untouched.
        from types import SimpleNamespace

        seen = []

        def capture(scenario, engine):
            seen.append(scenario)
            return "stub-result"

        stub = SimpleNamespace(recovered=True, recovery_time_s=1.0,
                               jain_reconvergence_s=1.0,
                               peak_rtt_overshoot_ms=0.0,
                               goodput_lost_mbit=0.0, baseline_mbps=10.0)
        monkeypatch.setattr(robustness_mod, "run_engine_scenario", capture)
        monkeypatch.setattr(robustness_mod, "recovery_report",
                            lambda result, faults, threshold: stub)
        cell = robustness_mod.run_cell("astraea", "blackout", "fluid",
                                       trials=1,
                                       policy="models/candidate.npz")
        assert cell.trials == 1 and cell.recovered == 1
        targets = [f for f in seen[0].flows if f.cc == "astraea"]
        others = [f for f in seen[0].flows if f.cc != "astraea"]
        assert targets
        assert all(f.cc_kwargs.get("policy") == "models/candidate.npz"
                   for f in targets)
        assert all("policy" not in f.cc_kwargs for f in others)

    def test_sweep_payload_shape_and_progress(self):
        seen = []
        payload = run_robustness_sweep(
            schemes=("cubic",), kinds=("blackout",), engines=("fluid",),
            trials=1, quick=True,
            progress=lambda done, total, cell: seen.append((done, total)))
        assert seen == [(1, 1)]
        assert payload["schemes"] == ["cubic"]
        (cell,) = payload["cells"]
        assert cell["scheme"] == "cubic"
        assert cell["trials"] == 1
        json.dumps(payload)  # artifact must be serialisable as-is

    def test_sweep_records_wall_clock_instrumentation(self):
        payload = run_robustness_sweep(
            schemes=("cubic",), kinds=("blackout",), engines=("fluid",),
            trials=1, quick=True)
        assert payload["workers"] == 1
        assert payload["elapsed_s"] > 0
        assert all(c["elapsed_s"] > 0 for c in payload["cells"])

    def test_strip_timing_fields_removes_only_timing(self):
        payload = run_robustness_sweep(
            schemes=("cubic",), kinds=("blackout",), engines=("fluid",),
            trials=1, quick=True)
        stripped = strip_timing_fields(payload)
        assert "elapsed_s" not in stripped
        assert "workers" not in stripped
        assert all("elapsed_s" not in c for c in stripped["cells"])
        assert stripped["cells"][0]["recovery_time_s"] == \
            payload["cells"][0]["recovery_time_s"]


class TestParallelSweep:
    """The parallel-layer determinism contract at the sweep level."""

    ARGS = dict(schemes=("cubic", "bbr"), kinds=("blackout", "flap"),
                engines=("fluid",), trials=1, quick=True)

    def test_workers2_payload_identical_to_serial(self):
        serial = run_robustness_sweep(workers=0, **self.ARGS)
        pooled = run_robustness_sweep(workers=2, **self.ARGS)
        assert strip_timing_fields(pooled) == strip_timing_fields(serial)

    def test_parallel_progress_monotone_done_count(self):
        seen = []
        run_robustness_sweep(
            workers=2, progress=lambda done, total, cell:
            seen.append((done, total, cell.scheme)), **self.ARGS)
        assert [d for d, _, _ in seen] == [1, 2, 3, 4]
        assert all(t == 4 for _, t, _ in seen)

    def test_worker_exception_names_the_failing_cell(self, monkeypatch):
        from repro.errors import TaskError

        def boom(scheme, kind, engine, **kwargs):
            raise RuntimeError("cell exploded")

        # Serial path so the monkeypatch reaches the worker function.
        monkeypatch.setattr(robustness_mod, "run_cell", boom)
        with pytest.raises(TaskError) as info:
            run_robustness_sweep(schemes=("cubic",), kinds=("blackout",),
                                 engines=("fluid",), trials=1, workers=0)
        assert info.value.context == "cell fluid/cubic/blackout"
        assert info.value.cause_type == "RuntimeError"


class TestGoldenRegression:
    """Pin the recovery metrics of one canonical run.

    (scheme=cubic, fault=blackout, seed=0, quick, fluid engine): any
    change to the fault layer, the fluid engine, the scenario family or
    the metric definitions shows up here first.  Update the constants
    deliberately when semantics change on purpose.
    """

    GOLDEN = {
        "fault_start_s": 12.0,
        "fault_end_s": 12.9,
        "baseline_mbps": 99.8222222222222,
        "recovery_time_s": 6.35,
        "jain_reconvergence_s": 0.05000000000000071,
        "peak_rtt_overshoot_ms": 14.221163411822397,
        "goodput_lost_mbit": 430.47132640963287,
    }

    @pytest.fixture(scope="class")
    def report(self):
        sc = robustness_scenario("cubic", kind="blackout", quick=True,
                                 seed=0)
        return recovery_report(run_engine_scenario(sc, "fluid"), sc.faults)

    @pytest.mark.parametrize("field", sorted(GOLDEN))
    def test_pinned_value(self, report, field):
        assert getattr(report, field) == \
            pytest.approx(self.GOLDEN[field], rel=1e-6, abs=1e-9)

    def test_recovered(self, report):
        assert report.recovered


class TestReportRendering:
    def payload(self):
        cells = [
            RecoveryCell(scheme="cubic", kind="blackout", engine="fluid",
                         trials=2, recovered=2, recovery_time_s=6.35,
                         jain_reconvergence_s=0.05,
                         peak_rtt_overshoot_ms=14.2,
                         goodput_lost_mbit=430.5, baseline_mbps=99.8),
            RecoveryCell(scheme="bbr", kind="flap", engine="packet",
                         trials=2, recovered=1,
                         recovery_time_s=float("nan"),
                         jain_reconvergence_s=float("nan"),
                         peak_rtt_overshoot_ms=3.0,
                         goodput_lost_mbit=120.0, baseline_mbps=95.0),
        ]
        return {"schemes": ["cubic", "bbr"], "kinds": ["blackout", "flap"],
                "engines": ["fluid", "packet"], "trials": 2, "quick": True,
                "threshold": 0.9, "cells": [c.as_dict() for c in cells]}

    def test_rows_sorted_and_fractional_recovered(self):
        rows = table_rows(self.payload())
        assert [r[0] for r in rows] == ["bbr", "cubic"]
        assert rows[0][3] == "1/2"
        assert len(rows[0]) == len(TABLE_HEADERS)

    def test_markdown_report_is_a_table(self):
        text = markdown_report(self.payload())
        assert text.startswith("# Robustness report")
        assert "| scheme | fault | engine |" in text
        assert "| --- |" in text
        assert "cubic" in text and "blackout" in text
        assert "90%" in text  # threshold surfaced in prose


class TestCli:
    def test_bench_robustness_small_writes_artifacts(self, tmp_path, capsys):
        rc = main(["bench", "robustness", "--small",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        payload = json.loads((tmp_path / "robustness_small.json").read_text())
        md = (tmp_path / "robustness_small.md").read_text()
        # >= 2 schemes x 2 fault kinds with finite recovery entries.
        assert len(payload["schemes"]) >= 2
        assert len(payload["kinds"]) >= 2
        assert len(payload["cells"]) == \
            len(payload["schemes"]) * len(payload["kinds"])
        assert all(np.isfinite(c["recovery_time_s"])
                   for c in payload["cells"])
        for cell in payload["cells"]:
            assert f"| {cell['scheme']} |" in md
        assert "# Robustness report" in capsys.readouterr().out

    def test_bench_robustness_scheme_subset(self, tmp_path):
        rc = main(["bench", "robustness", "--schemes", "cubic",
                   "--kinds", "blackout", "--engines", "fluid",
                   "--trials", "1", "--out-dir", str(tmp_path)])
        assert rc == 0
        payload = json.loads((tmp_path / "robustness.json").read_text())
        assert payload["schemes"] == ["cubic"]
        assert payload["kinds"] == ["blackout"]
        assert payload["trials"] == 1

    def test_bench_robustness_rejects_unknown_kind(self, tmp_path, capsys):
        rc = main(["bench", "robustness", "--schemes", "cubic",
                   "--kinds", "meteor", "--engines", "fluid",
                   "--trials", "1", "--out-dir", str(tmp_path)])
        assert rc == 1
        assert "unknown fault kind" in capsys.readouterr().err

    def test_bench_robustness_rejects_unknown_scheme(self, tmp_path, capsys):
        rc = main(["bench", "robustness", "--schemes", "cubci",
                   "--kinds", "blackout", "--engines", "fluid",
                   "--trials", "1", "--out-dir", str(tmp_path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "unknown schemes" in err and "cubci" in err
        assert not any(tmp_path.iterdir())  # nothing ran, nothing written

    def test_bench_robustness_rejects_unknown_engine(self, tmp_path, capsys):
        rc = main(["bench", "robustness", "--schemes", "cubic",
                   "--kinds", "blackout", "--engines", "quantum",
                   "--trials", "1", "--out-dir", str(tmp_path)])
        assert rc == 1
        assert "unknown engines" in capsys.readouterr().err

    def test_bench_robustness_artifact_records_workers(self, tmp_path):
        rc = main(["bench", "robustness", "--schemes", "cubic",
                   "--kinds", "blackout", "--engines", "fluid",
                   "--trials", "1", "--workers", "0",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        payload = json.loads((tmp_path / "robustness.json").read_text())
        assert payload["workers"] == 0
        assert payload["elapsed_s"] > 0

    def test_interrupted_sweep_leaves_no_orphaned_artifacts(
            self, tmp_path, capsys, monkeypatch):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(robustness_mod, "run_robustness_sweep",
                            interrupted)
        out = tmp_path / "out"
        rc = main(["bench", "robustness", "--small", "--out-dir", str(out)])
        assert rc == 130
        assert "no artifacts written" in capsys.readouterr().err
        assert not out.exists() or not any(out.iterdir())


class TestPacketEngineCell:
    def test_cubic_blackout_on_packet_engine(self):
        cell = run_cell("cubic", "blackout", "packet", trials=1, quick=True)
        assert cell.engine == "packet"
        assert cell.recovered == 1
        assert np.isfinite(cell.recovery_time_s)
        assert cell.baseline_mbps > 50.0  # two flows share a 100 Mbps link

    def test_kind_list_is_the_five_primitives(self):
        assert set(FAULT_KINDS) == \
            {"blackout", "flap", "loss-burst", "delay-spike", "reorder"}
