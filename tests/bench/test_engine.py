"""The engine fast-path microbenchmark, its artifact, and the CLI gate."""

from __future__ import annotations

import json

import pytest

from repro.bench.engine import (
    BENCH_ID,
    check_equivalence,
    measure_ticks_per_s,
    run_engine_benchmark,
)
from repro.cli import main


class TestEngineBenchmark:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_engine_benchmark(flow_counts=(2,), duration_s=2.0,
                                    episode_flows=2)

    def test_payload_schema(self, payload):
        assert payload["bench"] == BENCH_ID
        assert payload["tick_s"] == pytest.approx(0.002)
        assert payload["block_ticks"] >= 1
        assert payload["flow_counts"] == [2]
        (row,) = payload["ticks_per_s"]
        assert row["n_flows"] == 2
        assert row["reference"]["ticks_per_s"] > 0
        assert row["fast"]["ticks_per_s"] > 0
        assert row["speedup"] == pytest.approx(
            row["fast"]["ticks_per_s"] / row["reference"]["ticks_per_s"])

    def test_episode_leg_measured(self, payload):
        ep = payload["episode"]
        assert ep["reference"]["elapsed_s"] > 0
        assert ep["fast"]["elapsed_s"] > 0
        assert ep["speedup"] == pytest.approx(
            ep["reference"]["elapsed_s"] / ep["fast"]["elapsed_s"])

    def test_equivalence_embedded_and_passing(self, payload):
        eq = payload["equivalence"]
        assert eq["passed"] is True
        assert eq["max_delta"] <= eq["tolerance"]
        assert eq["rows"] > 0

    def test_measure_reports_both_paths(self):
        res = measure_ticks_per_s(n_flows=1, duration_s=1.0)
        assert res["reference"]["ticks_per_s"] > 0
        assert res["fast"]["ticks_per_s"] > 0


class TestEquivalenceGate:
    def test_pinned_scenario_within_tolerance(self):
        eq = check_equivalence()
        assert eq["passed"] is True
        assert eq["max_delta"] <= eq["tolerance"]


class TestEngineCli:
    def test_small_run_writes_strict_artifact(self, tmp_path, capsys):
        rc = main(["bench", "engine", "--small", "--out-dir",
                   str(tmp_path)])
        assert rc == 0
        # The artifact must be strict JSON (reporting layer contract).
        doc = json.loads((tmp_path / f"{BENCH_ID}.json").read_text())
        assert doc["bench"] == BENCH_ID
        assert doc["equivalence"]["passed"] is True
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_check_only_smoke(self, capsys):
        rc = main(["bench", "engine", "--check-only"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fast path equals reference" in out
