"""The fleet scaling benchmark, its artifact, and the CLI gate."""

from __future__ import annotations

import json

import pytest

from repro.bench.fleetbench import (
    BENCH_ID,
    GATE_MIN_CORES,
    GATE_MIN_FLOWS,
    REQUIRED_SPEEDUP,
    fleet_table_rows,
    measure_point,
    run_fleet_benchmark,
    speedup_gate,
)
from repro.bench.reporting import loads_strict
from repro.cli import build_parser, main


class TestFleetBenchmark:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_fleet_benchmark(points=((2, 4),), small=True)

    def test_payload_schema(self, payload):
        assert payload["bench"] == BENCH_ID
        assert payload["small"] is True
        assert payload["cpu_count"] >= 1
        (point,) = payload["points"]
        assert point["total_flows"] == 8
        for leg in ("serial", "sharded"):
            assert point[leg]["flow_ticks_per_wall_s"] > 0
            assert point[leg]["flows_per_wall_s"] > 0
            assert 0.0 < point[leg]["jain"] <= 1.0
            assert 0.0 < point[leg]["utilization"] <= 1.05
            assert point[leg]["failures"] == 0
        assert point["serial"]["workers"] == 1
        assert point["sharded"]["workers"] >= 2

    def test_aggregates_identical_across_legs(self, payload):
        (point,) = payload["points"]
        assert point["aggregates_identical"] is True
        assert point["serial"]["jain"] == point["sharded"]["jain"]
        assert point["serial"]["utilization"] == \
            point["sharded"]["utilization"]

    def test_embedded_equivalence_verdict(self, payload):
        eq = payload["equivalence"]
        assert eq["verdict"] == "identical"
        assert eq["passed"] is True
        assert eq["workers_compared"] == [1, 2]

    def test_payload_is_strict_json(self, payload):
        from repro.bench.reporting import encode_results

        parsed = loads_strict(encode_results(payload))
        assert parsed["bench"] == BENCH_ID

    def test_table_rows(self, payload):
        (row,) = fleet_table_rows(payload)
        assert row[0] == "2x4"
        assert row[1] == 8


class TestSpeedupGate:
    def _point(self, total_flows, speedup):
        return {"total_flows": total_flows, "speedup": speedup}

    def test_not_applicable_on_single_core(self):
        gate = speedup_gate([self._point(2000, 5.0)], cpu_count=1)
        assert gate["applicable"] is False
        assert gate["met"] is None
        assert gate["cpu_count"] == 1

    def test_not_applicable_without_large_point(self):
        gate = speedup_gate([self._point(100, 5.0)], cpu_count=4)
        assert gate["applicable"] is False
        assert gate["met"] is None

    def test_met_on_multicore_with_speedup(self):
        gate = speedup_gate(
            [self._point(100, 0.5),
             self._point(GATE_MIN_FLOWS, REQUIRED_SPEEDUP + 0.5)],
            cpu_count=GATE_MIN_CORES)
        assert gate["applicable"] is True
        assert gate["met"] is True
        assert gate["best_speedup"] == REQUIRED_SPEEDUP + 0.5

    def test_not_met_when_too_slow(self):
        gate = speedup_gate([self._point(GATE_MIN_FLOWS, 1.2)], cpu_count=8)
        assert gate["applicable"] is True
        assert gate["met"] is False


class TestMeasurePoint:
    def test_point_runs_both_legs(self):
        point = measure_point(2, 3, cc="cubic", seed=5)
        assert point["n_shards"] == 2
        assert point["flows_per_shard"] == 3
        assert point["aggregates_identical"] is True


class TestFleetCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench", "fleet"])
        assert args.cc == "cubic"
        assert args.workers == 2
        assert not args.small and not args.check_only

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["bench", "fleet", "--small", "--points", "2x3",
             "--workers", "3", "--seed", "9"])
        assert args.small and args.points == "2x3"
        assert args.workers == 3 and args.seed == 9

    def test_check_only_passes(self, capsys):
        assert main(["bench", "fleet", "--check-only"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_bad_points_rejected(self, capsys):
        assert main(["bench", "fleet", "--points", "nope"]) == 2
        assert "--points" in capsys.readouterr().err

    def test_small_writes_strict_artifact(self, tmp_path, capsys):
        rc = main(["bench", "fleet", "--points", "2x3",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        artifact = tmp_path / f"{BENCH_ID}.json"
        payload = loads_strict(artifact.read_text())
        assert payload["bench"] == BENCH_ID
        assert payload["equivalence"]["verdict"] == "identical"
        out = capsys.readouterr().out
        assert "Fleet scaling" in out
        assert json.loads(artifact.read_text())["points"]
