"""Benchmark trial runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runners import (
    run_scheme_trials,
    run_trials,
    summarize_trials,
)
from repro.config import FlowConfig, LinkConfig, ScenarioConfig


def tiny_scenario(seed=0):
    return ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0, buffer_bdp=1.0),
        flows=(FlowConfig(cc="astraea-ref"), FlowConfig(cc="astraea-ref")),
        duration_s=8.0,
        seed=seed,
    )


class TestRunners:
    def test_run_trials_uses_factory_seed(self):
        seeds = []

        def factory(seed):
            seeds.append(seed)
            return tiny_scenario(seed)

        results = run_trials(factory, trials=3)
        assert seeds == [0, 1, 2]
        assert len(results) == 3

    def test_run_scheme_trials_reseeds(self):
        results = run_scheme_trials(tiny_scenario(), trials=2)
        assert len(results) == 2

    def test_summarize_trials_averages(self):
        results = run_scheme_trials(tiny_scenario(), trials=2)
        summary = summarize_trials(results, "astraea-ref")
        assert summary.scheme == "astraea-ref"
        assert 0.5 < summary.utilization <= 1.05
        per_trial = [r.utilization() for r in results]
        assert summary.utilization == pytest.approx(np.mean(per_trial),
                                                    rel=1e-6)

    def test_summarize_skips_nan_fields(self):
        results = run_scheme_trials(tiny_scenario(), trials=1)
        summary = summarize_trials(results, "x", penalty_s=None)
        # With both flows starting at t=0 there may be no convergence
        # events at all; the summary must still be well-formed.
        assert summary.mean_jain > 0
