"""Test package."""
