"""Socket benchmark: smoke verdict, payload schema, strict artifact."""

from __future__ import annotations

import math

from repro.bench import socketbench
from repro.bench.reporting import encode_results, loads_strict
from repro.netsim.socketpath import SocketTuning

#: Fast tuning for the schema test.  The recovery verdict is NOT
#: asserted under it: at this compression the event loop cannot track
#: the 100 Mbps robustness scenario, so recovery becomes wall-clock
#: noise — the smoke test below runs that leg at default tuning, where
#: the acceptance criterion actually lives.
TUNING = SocketTuning(time_scale=40.0, max_wall_dgrams_per_s=20_000.0,
                      min_rto_s=0.5, max_rto_s=4.0)


class TestSmoke:
    def test_smoke_verdict_ok_at_default_tuning(self):
        # The CI gate, verbatim: seeded 5% loss transfer must be
        # byte-exact and the Astraea controller must post a finite
        # recovery time after a loss burst on real sockets (~7 s wall).
        verdict = socketbench.run_socket_smoke(seed=1)
        assert verdict["loss"]["payload_ok"] is True
        assert verdict["loss"]["loss_rate"] == socketbench.SMOKE_LOSS_RATE
        assert verdict["recovery"]["recovered"]
        assert math.isfinite(verdict["recovery"]["recovery_time_s"])
        assert verdict["recovery"]["corrupt"] == 0
        assert verdict["ok"] is True


class TestBenchmarkPayload:
    def test_small_payload_schema_and_strict_json(self):
        payload = socketbench.run_socket_benchmark(small=True, seed=1,
                                                   tuning=TUNING)
        assert set(payload) == {"config", "throughput", "loss",
                                "recovery", "elapsed_s"}
        assert payload["config"]["small"] is True
        levels = payload["throughput"]
        assert len(levels) == len(socketbench.SMALL_BANDWIDTHS)
        for level in levels:
            assert level["corrupt"] == 0
            assert level["achieved_mbps"] > 0
            assert level["wire_segs_per_wall_s"] > 0
        loss = payload["loss"]
        assert loss["payload_ok"] is True
        assert 0 < loss["goodput_efficiency"] <= 1.0
        # The artifact contract: strict JSON round trip, native types,
        # non-finite recovery sentinels become null.
        round_trip = loads_strict(encode_results(payload))
        assert round_trip["recovery"]["kind"] == "loss-burst"
        assert isinstance(round_trip["recovery"]["recovered"], bool)
        assert isinstance(round_trip["loss"]["payload_ok"], bool)
        t_rec = round_trip["recovery"]["recovery_time_s"]
        assert t_rec is None or isinstance(t_rec, (int, float))
