"""Canonical benchmark scenarios must match the paper's parameters."""

from __future__ import annotations

import pytest

from repro.bench import scenarios


class TestFig6:
    def test_parameters(self):
        sc = scenarios.fig6_scenario("cubic")
        assert sc.link.bandwidth_mbps == 100.0
        assert sc.link.rtt_ms == 30.0
        assert sc.link.buffer_bdp == 1.0
        assert len(sc.flows) == 3
        assert [f.start_s for f in sc.flows] == [0.0, 40.0, 80.0]
        assert all(f.duration_s == 120.0 for f in sc.flows)

    def test_quick_mode_shrinks_time_only(self):
        sc = scenarios.fig6_scenario("cubic", quick=True)
        assert sc.link.bandwidth_mbps == 100.0
        assert sc.duration_s < scenarios.fig6_scenario("cubic").duration_s


class TestMotivation:
    def test_fig1a_matches_paper(self):
        sc = scenarios.fig1a_scenario()
        assert sc.link.bandwidth_mbps == 80.0
        assert sc.link.rtt_ms == 60.0
        # 4.8 MB buffer in 1500 B packets.
        assert sc.link.buffer_size_packets == pytest.approx(3200.0)
        assert all(f.cc == "aurora" for f in sc.flows)

    def test_fig1b_theta0_forwarded(self):
        sc = scenarios.fig1b_scenario(theta0=8.0)
        assert all(f.cc_kwargs == {"theta0": 8.0} for f in sc.flows)
        assert sc.link.rtt_ms == 120.0


class TestOthers:
    def test_fig8_buffer_sized_for_200ms(self):
        sc = scenarios.fig8_scenario("cubic")
        # 1 BDP at 100 Mbps x 200 ms = 1666.7 packets.
        assert sc.link.buffer_size_packets == pytest.approx(1666.7, rel=0.01)
        assert len(sc.flows) == 5

    def test_fig10_flow_count(self):
        sc = scenarios.fig10_scenario("astraea", 30)
        assert len(sc.flows) == 30
        assert sc.link.bandwidth_mbps == 600.0

    def test_fig11_topology(self):
        topo = scenarios.fig11_topology("astraea", n_fs1=4)
        assert len(topo.flows) == 6

    def test_fig13_uses_lte_trace(self):
        sc = scenarios.fig13_scenario("astraea")
        assert sc.trace == "lte"

    def test_fig14_one_versus_cubics(self):
        sc = scenarios.fig14_scenario("bbr", n_cubic=3)
        assert sc.flows[0].cc == "bbr"
        assert [f.cc for f in sc.flows[1:]] == ["cubic"] * 3

    def test_fig20_satellite(self):
        sc = scenarios.fig20_scenario("astraea")
        assert sc.link.bandwidth_mbps == 42.0
        assert sc.link.rtt_ms == 800.0
        assert sc.link.random_loss == pytest.approx(0.0074)

    def test_fig22_highspeed(self):
        sc = scenarios.fig22_scenario("astraea")
        assert sc.link.bandwidth_mbps == 10_000.0
        assert sc.link.rtt_ms == 10.0

    def test_fig15_kinds(self):
        intra = scenarios.fig15_scenario("astraea", kind="intra")
        inter = scenarios.fig15_scenario("astraea", kind="inter")
        assert intra.link.rtt_ms < inter.link.rtt_ms
        assert intra.trace == inter.trace == "wan"
