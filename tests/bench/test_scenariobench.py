"""Scenario sweep: axis validation, golden regression, report and CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.bench.scenariobench as scenariobench_mod
from repro.bench.scenariobench import (
    SMALL_SCHEMES,
    SWEEP_FAMILIES,
    TABLE_HEADERS,
    ScenarioCell,
    markdown_report,
    run_scenario_cell,
    run_scenario_sweep,
    table_rows,
    validate_scenario_axes,
)
from repro.bench.robustness import strip_timing_fields
from repro.cli import main
from repro.errors import ConfigError


class TestAxisValidation:
    def test_accepts_the_default_axes(self):
        validate_scenario_axes(SMALL_SCHEMES, SWEEP_FAMILIES,
                               ("fluid", "packet"))

    def test_unknown_family_rejected_up_front(self):
        with pytest.raises(ConfigError,
                           match=r"incats.*known.*incast"):
            run_scenario_sweep(schemes=("cubic",), families=("incats",),
                               engines=("fluid",), trials=1)

    def test_unknown_scheme_rejected_up_front(self):
        with pytest.raises(ConfigError, match=r"cubci.*known.*cubic"):
            run_scenario_sweep(schemes=("cubci",), families=("incast",),
                               engines=("fluid",), trials=1)

    def test_unknown_engine_rejected_up_front(self):
        with pytest.raises(ConfigError, match=r"quantum.*known.*fluid"):
            run_scenario_sweep(schemes=("cubic",), families=("incast",),
                               engines=("quantum",), trials=1)

    def test_traced_family_rejected_on_packet_engine(self):
        # fig13/fig15 drive a capacity trace, which only the fluid
        # engine models; asking for them on the packet engine must die
        # up front, not inside the first affected cell.
        with pytest.raises(ConfigError, match="capacity trace"):
            validate_scenario_axes(("cubic",), ("fig13",),
                                   ("fluid", "packet"))
        validate_scenario_axes(("cubic",), ("fig13",), ("fluid",))


class TestSweepPlumbing:
    ARGS = dict(schemes=("cubic",), families=("background-udp",),
                engines=("fluid",), trials=1, quick=True)

    def test_payload_shape_and_progress(self):
        seen = []
        payload = run_scenario_sweep(
            progress=lambda done, total, cell: seen.append((done, total)),
            **self.ARGS)
        assert seen == [(1, 1)]
        assert payload["families"] == ["background-udp"]
        (cell,) = payload["cells"]
        assert cell["scheme"] == "cubic"
        assert cell["family"] == "background-udp"
        assert cell["engine"] == "fluid"
        assert 0.0 <= cell["jfi"] <= 1.0
        assert 0.0 <= cell["utilization"] <= 1.05
        json.dumps(payload)  # artifact must be serialisable as-is

    def test_workers2_payload_identical_to_serial(self):
        serial = run_scenario_sweep(workers=0, **self.ARGS)
        pooled = run_scenario_sweep(workers=2, **self.ARGS)
        assert strip_timing_fields(pooled) == strip_timing_fields(serial)

    def test_cell_excludes_cross_traffic_from_jfi(self):
        # background-udp runs two identical foreground flows plus the
        # blaster at 30% of capacity; with the blaster excluded the two
        # foreground flows split the residual evenly -> JFI ~ 1.  Were
        # the blaster counted, its unequal share would drag JFI down.
        cell = run_scenario_cell("cubic", "background-udp", "fluid",
                                 trials=1, quick=True)
        assert cell.jfi > 0.98
        assert cell.utilization > 0.9


class TestGoldenRegression:
    """Pin JFI x utilization of one seed of each new family.

    (seed=0, quick, fluid engine, 1 trial) for cubic and astraea: any
    change to the builders, the fluid engine, the fairness metrics or
    the foreground-flow selection shows up here first.  Update the
    constants deliberately when semantics change on purpose.
    """

    GOLDEN = {
        ("cubic", "incast"): (0.9106505509007985, 0.7823136157292783),
        ("cubic", "asymmetric-rtt"): (0.3717807505386271,
                                      0.9999626161542975),
        ("cubic", "background-udp"): (1.0, 0.9999999999999997),
        ("astraea", "incast"): (0.7371745516875159, 0.7614848319389016),
        ("astraea", "asymmetric-rtt"): (0.7674916544639092,
                                        0.9995332293827779),
        ("astraea", "background-udp"): (1.0, 0.9998797899252411),
    }

    @pytest.fixture(scope="class")
    def cells(self):
        return {key: run_scenario_cell(key[0], key[1], "fluid", trials=1,
                                       quick=True)
                for key in self.GOLDEN}

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_pinned_cell(self, cells, key):
        jfi, utilization = self.GOLDEN[key]
        assert cells[key].jfi == pytest.approx(jfi, rel=1e-6, abs=1e-9)
        assert cells[key].utilization == pytest.approx(utilization,
                                                       rel=1e-6, abs=1e-9)

    def test_astraea_fairer_than_cubic_under_rtt_asymmetry(self, cells):
        # The paper's headline claim, reproduced on a family its own
        # evaluation does not contain.
        assert cells[("astraea", "asymmetric-rtt")].jfi > \
            cells[("cubic", "asymmetric-rtt")].jfi + 0.2


class TestReportRendering:
    def payload(self):
        cells = [
            ScenarioCell(scheme="cubic", family="incast", engine="fluid",
                         trials=2, jfi=0.91, utilization=0.78,
                         mean_rtt_ms=11.5, mean_loss_rate=0.003),
            ScenarioCell(scheme="astraea", family="background-udp",
                         engine="packet", trials=2, jfi=0.99,
                         utilization=1.0, mean_rtt_ms=49.0,
                         mean_loss_rate=0.0),
        ]
        return {"schemes": ["cubic", "astraea"],
                "families": ["incast", "background-udp"],
                "engines": ["fluid", "packet"], "trials": 2, "quick": True,
                "cells": [c.as_dict() for c in cells]}

    def test_rows_sorted_family_major(self):
        rows = table_rows(self.payload())
        assert [r[1] for r in rows] == ["background-udp", "incast"]
        assert len(rows[0]) == len(TABLE_HEADERS)

    def test_markdown_report_is_a_table(self):
        text = markdown_report(self.payload())
        assert text.startswith("# Scenario report")
        assert "| scheme | family | engine |" in text
        assert "| --- |" in text
        assert "incast" in text and "background-udp" in text
        assert "foreground" in text  # JFI scope surfaced in prose


class TestCli:
    def test_bench_scenarios_single_cell(self, tmp_path, capsys):
        rc = main(["bench", "scenarios", "--schemes", "cubic",
                   "--families", "background-udp", "--engines", "fluid",
                   "--trials", "1", "--out-dir", str(tmp_path)])
        assert rc == 0
        payload = json.loads(
            (tmp_path / "BENCH_scenarios.json").read_text())
        assert payload["schemes"] == ["cubic"]
        assert payload["families"] == ["background-udp"]
        (cell,) = payload["cells"]
        assert 0.0 <= cell["jfi"] <= 1.0
        assert "# Scenario report" in capsys.readouterr().out

    def test_bench_scenarios_rejects_unknown_family(self, tmp_path, capsys):
        rc = main(["bench", "scenarios", "--schemes", "cubic",
                   "--families", "wormhole", "--engines", "fluid",
                   "--trials", "1", "--out-dir", str(tmp_path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "unknown scenario families" in err and "wormhole" in err
        assert not any(tmp_path.iterdir())  # nothing ran, nothing written

    def test_interrupted_sweep_leaves_no_orphaned_artifacts(
            self, tmp_path, capsys, monkeypatch):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(scenariobench_mod, "run_scenario_sweep",
                            interrupted)
        out = tmp_path / "out"
        rc = main(["bench", "scenarios", "--small", "--out-dir", str(out)])
        assert rc == 130
        assert "no artifacts written" in capsys.readouterr().err
        assert not out.exists() or not any(out.iterdir())

    @pytest.mark.slow
    def test_bench_scenarios_small_covers_acceptance_matrix(
            self, tmp_path, capsys):
        # The acceptance criterion of the CI smoke step: >= 3 schemes x
        # 3 new families on both engines, strict-JSON artifact, every
        # cell with JFI in [0, 1] and utilization in [0, 1.05].
        rc = main(["bench", "scenarios", "--small",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        from repro.bench.reporting import loads_strict

        payload = loads_strict(
            (tmp_path / "BENCH_scenarios.json").read_text())
        assert len(payload["schemes"]) >= 3
        assert set(payload["families"]) == set(SWEEP_FAMILIES)
        assert set(payload["engines"]) == {"fluid", "packet"}
        assert len(payload["cells"]) == (len(payload["schemes"])
                                         * len(payload["families"])
                                         * len(payload["engines"]))
        md = (tmp_path / "BENCH_scenarios.md").read_text()
        for cell in payload["cells"]:
            assert 0.0 <= cell["jfi"] <= 1.0, cell
            assert 0.0 <= cell["utilization"] <= 1.05, cell
            assert np.isfinite(cell["mean_rtt_ms"]), cell
            assert f"| {cell['scheme']} |" in md
