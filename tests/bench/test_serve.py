"""Serving load benchmark: pure helpers, validation, spawn smoke."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import reporting
from repro.bench.serve import (
    BENCH_ID,
    DEFAULT_LEVELS,
    SMALL_LEVELS,
    _percentiles,
    _stats_delta,
    run_serve_benchmark,
)
from repro.errors import ServiceError


class TestPercentiles:
    def test_empty(self):
        p = _percentiles([])
        assert p["count"] == 0
        assert p["p999_s"] == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(5)
        samples = list(rng.lognormal(mean=-5.0, sigma=0.7, size=400))
        p = _percentiles(samples)
        assert p["count"] == 400
        assert p["p50_s"] == pytest.approx(np.percentile(samples, 50))
        assert p["p99_s"] == pytest.approx(np.percentile(samples, 99))
        assert p["p999_s"] == pytest.approx(np.percentile(samples, 99.9))
        assert p["max_s"] == max(samples)
        assert p["p50_s"] <= p["p99_s"] <= p["p999_s"] <= p["max_s"]


class TestStatsDelta:
    def _stats(self, **over):
        counters = {
            "requests": 0, "forward_passes": 0, "batch_count": 0,
            "batch_sum": 0, "fallbacks": 0, "deadline_misses": 0,
            "neutral_answers": 0, "rejected": 0, "cpu_time_s": 0.0,
            "daemon_admission_rejected": 0,
        }
        counters.update(over)
        return {"counters": counters}

    def test_deltas_and_mean_batch(self):
        before = self._stats(requests=100, forward_passes=20,
                             batch_count=20, batch_sum=100)
        after = self._stats(requests=700, forward_passes=80,
                            batch_count=80, batch_sum=700,
                            fallbacks=3, cpu_time_s=0.5)
        d = _stats_delta(before, after)
        assert d["requests"] == 600
        assert d["forward_passes"] == 60
        assert d["mean_batch_size"] == pytest.approx(600 / 60)
        assert d["fallbacks"] == 3
        assert d["cpu_time_s"] == pytest.approx(0.5)

    def test_no_batches_mean_zero(self):
        d = _stats_delta(self._stats(), self._stats())
        assert d["mean_batch_size"] == 0.0


class TestValidation:
    def test_default_levels_sane(self):
        assert len(DEFAULT_LEVELS) >= 3
        assert max(DEFAULT_LEVELS) >= 256
        assert len(SMALL_LEVELS) >= 3

    def test_rejects_bad_levels(self):
        with pytest.raises(ServiceError):
            run_serve_benchmark([])
        with pytest.raises(ServiceError):
            run_serve_benchmark([4, 0])
        with pytest.raises(ServiceError):
            run_serve_benchmark([-1])

    def test_rejects_bad_timing(self):
        with pytest.raises(ServiceError):
            run_serve_benchmark([4], duration_s=0.0)
        with pytest.raises(ServiceError):
            run_serve_benchmark([4], duration_s=1.0, mtp_s=-1.0)


class TestSpawnSmoke:
    """End to end: spawn a real daemon subprocess, sweep two small
    levels, assert the ledger balances and the drain is clean."""

    def test_small_sweep(self, tmp_path):
        payload = run_serve_benchmark(
            (2, 6), duration_s=0.4, mtp_s=0.020, timeout=30.0)
        assert payload["bench"] == "serve"
        assert payload["clean_shutdown"] is True
        assert [row["n_flows"] for row in payload["levels"]] == [2, 6]
        for row in payload["levels"]:
            assert row["answered"] > 0
            assert row["unanswered"] == 0
            assert row["errors"] == {}
            assert row["actions_per_s"] > 0
            assert row["latency"]["p50_s"] <= row["latency"]["p99_s"]
            assert row["daemon"]["requests"] >= row["answered"]
        # The artifact round-trips through the strict JSON writer.
        out = reporting.write_results_file(
            tmp_path / f"{BENCH_ID}.json", payload)
        parsed = reporting.loads_strict(out.read_text())
        assert parsed["levels"][0]["unanswered"] == 0
