"""Benchmark reporting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import reporting


class TestFormat:
    def test_table_contains_everything(self):
        text = reporting.format_table("T", ["a", "bee"],
                                      [[1.0, "x"], [0.12345, "y"]])
        assert "=== T ===" in text
        assert "bee" in text
        assert "0.1235" in text
        assert "x" in text

    def test_nan_rendered(self):
        text = reporting.format_table("T", ["v"], [[float("nan")]])
        assert "n/a" in text

    def test_empty_rows(self):
        text = reporting.format_table("T", ["v"], [])
        assert "=== T ===" in text


class TestPersistence:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        payload = {"x": 1.5, "arr": np.array([1.0, 2.0]),
                   "np_float": np.float64(3.0)}
        reporting.save_results("exp", payload)
        loaded = reporting.load_results("exp")
        assert loaded["x"] == 1.5
        assert loaded["arr"] == [1.0, 2.0]
        assert loaded["np_float"] == 3.0

    def test_load_missing_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        assert reporting.load_results("missing") is None
