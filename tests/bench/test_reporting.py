"""Benchmark reporting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import reporting


class TestFormat:
    def test_table_contains_everything(self):
        text = reporting.format_table("T", ["a", "bee"],
                                      [[1.0, "x"], [0.12345, "y"]])
        assert "=== T ===" in text
        assert "bee" in text
        assert "0.1235" in text
        assert "x" in text

    def test_nan_rendered(self):
        text = reporting.format_table("T", ["v"], [[float("nan")]])
        assert "n/a" in text

    def test_empty_rows(self):
        text = reporting.format_table("T", ["v"], [])
        assert "=== T ===" in text


class TestPersistence:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        payload = {"x": 1.5, "arr": np.array([1.0, 2.0]),
                   "np_float": np.float64(3.0)}
        reporting.save_results("exp", payload)
        loaded = reporting.load_results("exp")
        assert loaded["x"] == 1.5
        assert loaded["arr"] == [1.0, 2.0]
        assert loaded["np_float"] == 3.0

    def test_load_missing_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        assert reporting.load_results("missing") is None


class TestStrictJson:
    """Artifacts must parse under every strict JSON parser (jq, JS)."""

    def test_non_finite_floats_serialise_as_null(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        payload = {"nan": float("nan"), "inf": float("inf"),
                   "ninf": float("-inf"),
                   "np_nan": np.float64("nan"),
                   "nested": {"cells": [float("nan"), 1.0]},
                   "arr": np.array([np.nan, 2.0])}
        path = reporting.save_results("exp", payload)
        text = path.read_text()
        assert "NaN" not in text and "Infinity" not in text
        loaded = reporting.load_results("exp")
        assert loaded["nan"] is None
        assert loaded["inf"] is None and loaded["ninf"] is None
        assert loaded["nested"]["cells"] == [None, 1.0]
        assert loaded["arr"] == [None, 2.0]

    def test_load_rejects_legacy_nan_artifacts(self, tmp_path, monkeypatch):
        from repro.errors import ConfigError

        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        (tmp_path / "legacy.json").write_text('{"v": NaN}')
        with pytest.raises(ConfigError, match="NaN"):
            reporting.load_results("legacy")

    def test_every_checked_in_artifact_is_strict(self):
        # The enforcement sweep: everything save_results has ever written
        # under benchmarks/results/ must parse with the constant-token
        # extensions disabled.
        paths = sorted(reporting.RESULTS_DIR.glob("*.json"))
        assert paths, "results directory unexpectedly empty"
        for path in paths:
            reporting.loads_strict(path.read_text())  # raises on NaN/Inf

    def test_finite_values_survive_sanitising(self):
        doc = reporting.sanitize_payload(
            {"a": [1, 2.5, "x", True, None], "b": np.int64(7)})
        assert doc == {"a": [1, 2.5, "x", True, None], "b": 7}


class TestAtomicWrites:
    def test_failed_serialisation_leaves_previous_artifact_intact(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        reporting.save_results("exp", {"ok": 1})
        with pytest.raises(TypeError):
            reporting.save_results("exp", {"bad": object()})
        assert reporting.load_results("exp") == {"ok": 1}
        assert not list(tmp_path.glob("*.tmp"))  # no stray temp files

    def test_markdown_write_is_atomic_replace(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        reporting.save_markdown("exp", "old")
        path = reporting.save_markdown("exp", "new report")
        assert path.read_text() == "new report\n"
        assert not list(tmp_path.glob("*.tmp"))
