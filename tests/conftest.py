"""Shared fixtures: short canonical scenario runs cached per session."""

from __future__ import annotations

import pytest

from repro.config import FlowConfig, LinkConfig, ScenarioConfig
from repro.env import run_scenario
from repro.netsim import staggered_flows


@pytest.fixture(scope="session")
def short_link() -> LinkConfig:
    return LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)


@pytest.fixture(scope="session")
def reference_three_flow_result(short_link):
    """Three astraea-ref flows, 10 s stagger — reused by many tests."""
    scenario = ScenarioConfig(
        link=short_link,
        flows=staggered_flows(3, cc="astraea-ref", interval_s=10.0,
                              duration_s=30.0),
        duration_s=50.0,
    )
    return run_scenario(scenario)


@pytest.fixture(scope="session")
def single_cubic_result(short_link):
    scenario = ScenarioConfig(
        link=short_link,
        flows=(FlowConfig(cc="cubic", start_s=0.0),),
        duration_s=15.0,
    )
    return run_scenario(scenario)
