"""Sharded fleet runner: spec validation, determinism, quarantine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ShardFailureWarning, SimulationError
from repro.fleet import FleetSpec, check_equivalence, run_fleet
from repro.fleet import runner as fleet_runner
from repro.scenarios import build_scenario, fleet_shard_seed


def small_spec(**changes) -> FleetSpec:
    base = dict(cc="cubic", n_shards=3, flows_per_shard=4, seed=11,
                quick=True, epochs=2)
    base.update(changes)
    return FleetSpec(**base)


class TestFleetSpec:
    def test_defaults_valid(self):
        spec = FleetSpec()
        assert spec.total_flows == spec.n_shards * spec.flows_per_shard

    @pytest.mark.parametrize("changes", [
        {"n_shards": 0},
        {"n_shards": -1},
        {"n_shards": 5000},
        {"n_shards": 2.5},
        {"n_shards": True},
        {"flows_per_shard": 0},
        {"flows_per_shard": 20_000},
        {"seed": -1},
        {"seed": "x"},
        {"epochs": 0},
        {"cc": ""},
        {"cc": 7},
    ])
    def test_invalid_specs_are_typed(self, changes):
        with pytest.raises(ConfigError):
            small_spec(**changes)

    def test_total_flow_cap(self):
        with pytest.raises(ConfigError, match="cap"):
            FleetSpec(n_shards=4000, flows_per_shard=1000)

    def test_shard_seed_is_stable_and_distinct(self):
        spec = small_spec()
        seeds = [spec.shard_seed(i) for i in range(spec.n_shards)]
        assert seeds == [fleet_shard_seed(spec.seed, i)
                         for i in range(spec.n_shards)]
        assert len(set(seeds)) == spec.n_shards
        with pytest.raises(ConfigError):
            spec.shard_seed(spec.n_shards)
        with pytest.raises(ConfigError):
            spec.shard_seed(-1)

    def test_dict_round_trip(self):
        spec = small_spec()
        assert FleetSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown"):
            FleetSpec.from_dict({"cc": "cubic", "bogus": 1})

    def test_with_revalidates(self):
        spec = small_spec()
        assert spec.with_(n_shards=5).n_shards == 5
        with pytest.raises(ConfigError):
            spec.with_(n_shards=0)


class TestFleetScenarioFamily:
    def test_shards_differ_but_are_deterministic(self):
        a0 = build_scenario("fleet", cc="cubic", seed=3, shard_index=0)
        a0b = build_scenario("fleet", cc="cubic", seed=3, shard_index=0)
        a1 = build_scenario("fleet", cc="cubic", seed=3, shard_index=1)
        assert a0 == a0b
        assert a0.link != a1.link or a0.flows != a1.flows

    def test_quick_shrinks_time_only(self):
        quick = build_scenario("fleet", cc="cubic", seed=3, quick=True,
                               shard_index=2)
        full = build_scenario("fleet", cc="cubic", seed=3, quick=False,
                              shard_index=2)
        assert quick.duration_s < full.duration_s
        assert quick.link == full.link

    def test_invalid_params_are_typed(self):
        with pytest.raises(ConfigError):
            build_scenario("fleet", cc="cubic", n_flows=0)
        with pytest.raises(ConfigError):
            build_scenario("fleet", cc="cubic", shard_index=-1)


class TestRunFleet:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return run_fleet(small_spec(), workers=1)

    def test_aggregates_are_sane(self, serial_result):
        spec = serial_result.spec
        assert serial_result.total_flows == spec.total_flows
        assert 0.0 < serial_result.jain <= 1.0
        assert 0.0 < serial_result.utilization <= 1.05
        assert serial_result.total_ticks > 0
        assert not serial_result.failures

    def test_shard_records_are_sufficient_stats(self, serial_result):
        for record in serial_result.shards:
            assert record["ok"]
            assert set(record["stats"]) == {
                "count", "total", "sum_sq", "capacity", "batches"}
            assert len(record["epoch_goodput_mbps"]) == \
                serial_result.spec.epochs
            assert record["shard_seed"] == \
                serial_result.spec.shard_seed(record["index"])

    def test_serial_rerun_is_bit_identical(self, serial_result):
        again = run_fleet(small_spec(), workers=1)
        assert again.fingerprint() == serial_result.fingerprint()

    def test_pool_matches_serial_bit_identically(self, serial_result):
        pooled = run_fleet(small_spec(), workers=2)
        assert pooled.fingerprint() == serial_result.fingerprint()
        assert pooled.workers == 2

    def test_check_equivalence_verdict(self):
        verdict = check_equivalence(
            small_spec(n_shards=2, flows_per_shard=3))
        assert verdict["passed"]
        assert verdict["verdict"] == "identical"
        assert verdict["workers_compared"] == [1, 2]


class TestQuarantine:
    def _failing_inner(self, bad_indices):
        real = fleet_runner._run_shard_inner

        def inner(spec, index, started):
            if index in bad_indices:
                raise SimulationError(f"injected failure in shard {index}")
            return real(spec, index, started)

        return inner

    def test_failed_shard_is_quarantined_and_named(self, monkeypatch):
        monkeypatch.setattr(fleet_runner, "_run_shard_inner",
                            self._failing_inner({1}))
        spec = small_spec()
        with pytest.warns(ShardFailureWarning) as caught:
            result = run_fleet(spec, workers=1)
        message = str(caught[0].message)
        assert "shard 1" in message
        assert str(spec.seed) in message
        assert str(spec.shard_seed(1)) in message
        assert len(result.failures) == 1
        assert result.failures[0]["index"] == 1
        assert result.failures[0]["error"] == "SimulationError"
        # Healthy shards still aggregate.
        assert result.total_flows == \
            (spec.n_shards - 1) * spec.flows_per_shard
        assert 0.0 < result.jain <= 1.0

    def test_strict_mode_raises(self, monkeypatch):
        monkeypatch.setattr(fleet_runner, "_run_shard_inner",
                            self._failing_inner({1}))
        with pytest.raises(SimulationError, match="quarantined"):
            run_fleet(small_spec(), workers=1, strict=True)

    def test_all_shards_failing_raises(self, monkeypatch):
        monkeypatch.setattr(fleet_runner, "_run_shard_inner",
                            self._failing_inner({0, 1, 2}))
        with pytest.warns(ShardFailureWarning), \
                pytest.raises(SimulationError, match="every fleet shard"):
            run_fleet(small_spec(), workers=1)


class TestProgress:
    def test_progress_fires_per_shard(self):
        seen = []
        run_fleet(small_spec(), workers=1,
                  progress=lambda done, total, index, rec:
                  seen.append((done, total, index)))
        assert [d for d, _t, _i in seen] == [1, 2, 3]
        assert all(t == 3 for _d, t, _i in seen)
        assert sorted(i for _d, _t, i in seen) == [0, 1, 2]
