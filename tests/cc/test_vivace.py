"""Vivace: utility function and gradient-ascent behaviour."""

from __future__ import annotations

import pytest

from repro.cc import Vivace
from tests.cc.test_base import make_stats


class TestUtility:
    def test_monotone_in_rate_without_penalty(self):
        v = Vivace()
        assert v.utility(20.0, 0.0, 0.0) > v.utility(10.0, 0.0, 0.0)

    def test_latency_gradient_penalised(self):
        v = Vivace()
        assert v.utility(10.0, 0.1, 0.0) < v.utility(10.0, 0.0, 0.0)

    def test_loss_penalised(self):
        v = Vivace()
        assert v.utility(10.0, 0.0, 0.2) < v.utility(10.0, 0.0, 0.0)

    def test_matches_eq2_form(self):
        v = Vivace()
        x, grad, loss = 10.0, 0.01, 0.05
        expected = x ** 0.9 - 900.0 * x * grad - 11.25 * x * loss
        assert v.utility(x, grad, loss) == pytest.approx(expected)

    def test_zero_rate(self):
        assert Vivace().utility(0.0, 0.0, 0.0) == 0.0

    def test_negative_gradient_not_rewarded(self):
        v = Vivace()
        assert v.utility(10.0, -0.5, 0.0) == pytest.approx(
            v.utility(10.0, 0.0, 0.0))


class TestControl:
    def drive(self, vivace, rtts, loss=0.0):
        """Feed stats whose sent-rate reflects the previously enforced
        pacing, as the environment would."""
        decisions = []
        pacing = None
        for i, rtt in enumerate(rtts):
            sent = pacing * 0.03 if pacing else 30.0
            d = vivace.on_interval(make_stats(
                time_s=(i + 1) * 0.03, avg_rtt_s=rtt, min_rtt_s=rtt,
                sent_pkts=max(sent, 1.0),
                lost_pkts=loss * max(sent, 1.0)))
            pacing = d.pacing_pps
            decisions.append(d)
        return decisions

    def test_probing_cycle_is_three_phase(self):
        v = Vivace(theta0=1.0)
        base = v.rate_mbps
        # probe up, probe down, move: one full cycle in one timeline.
        self.drive(v, [0.03, 0.03, 0.03])
        # With flat RTT and no loss the utility gradient in rate is
        # positive, so the move step raises the rate.
        assert v.rate_mbps > base

    def test_rate_never_below_floor(self):
        v = Vivace(theta0=10.0)
        self.drive(v, [0.03 + 0.02 * i for i in range(60)], loss=0.3)
        assert v.rate_mbps >= Vivace.MIN_RATE_MBPS

    def test_theta0_scales_step(self):
        # At a high operating rate the 25%-of-rate step bound is far away,
        # so the step size is proportional to theta0.
        slow = Vivace(theta0=1.0)
        fast = Vivace(theta0=8.0)
        for v in (slow, fast):
            v.rate_mbps = 100.0
            self.drive(v, [0.03] * 3)
        assert fast.rate_mbps - 100.0 > 2.0 * (slow.rate_mbps - 100.0) > 0.0

    def test_amplifier_grows_with_consistent_direction(self):
        v = Vivace(theta0=1.0)
        self.drive(v, [0.03] * 30)
        assert v._amplifier > 1.0

    def test_interval_tracks_rtt(self):
        v = Vivace()
        assert v.interval_s(0.12) == pytest.approx(0.12, rel=v.mi_jitter)

    def test_rejects_bad_theta0(self):
        with pytest.raises(ValueError):
            Vivace(theta0=0.0)

    def test_decision_sets_pacing_and_cwnd(self):
        v = Vivace()
        d = v.on_interval(make_stats())
        assert d.pacing_pps is not None
        assert d.cwnd_pkts >= 4.0


class TestMiJitter:
    def test_jittered_intervals_vary_around_srtt(self):
        v = Vivace(mi_jitter=0.15)
        intervals = [v.interval_s(0.1) for _ in range(50)]
        assert min(intervals) >= 0.085 - 1e-9
        assert max(intervals) <= 0.115 + 1e-9
        assert len(set(intervals)) > 10

    def test_zero_jitter_is_deterministic(self):
        v = Vivace(mi_jitter=0.0)
        assert v.interval_s(0.1) == v.interval_s(0.1) == 0.1

    def test_jitter_reproducible_per_seed(self):
        a, b = Vivace(seed=3), Vivace(seed=3)
        assert [a.interval_s(0.1) for _ in range(5)] == \
            [b.interval_s(0.1) for _ in range(5)]

    def test_rejects_bad_jitter(self):
        import pytest

        with pytest.raises(ValueError):
            Vivace(mi_jitter=1.0)
