"""Aurora and Orca baselines (fallback behaviour paths)."""

from __future__ import annotations

import pytest

from repro.cc.aurora import Aurora, aurora_reward
from repro.cc.orca import Orca
from tests.cc.test_base import make_stats


class TestAuroraReward:
    def test_throughput_dominant(self):
        # Full utilisation beats half utilisation even with some latency.
        full = aurora_reward(1.0, 0.06, 0.03, 0.0)
        half = aurora_reward(0.5, 0.03, 0.03, 0.0)
        assert full > half

    def test_loss_penalised(self):
        assert aurora_reward(1.0, 0.03, 0.03, 0.1) < \
            aurora_reward(1.0, 0.03, 0.03, 0.0)

    def test_no_fairness_term(self):
        """Eq. 1 is purely local: identical stats, identical reward —
        regardless of what competitors experience."""
        assert aurora_reward(0.5, 0.04, 0.03, 0.0) == \
            aurora_reward(0.5, 0.04, 0.03, 0.0)


class TestAuroraFallback:
    def make(self):
        a = Aurora(policy=None)
        a.policy = None  # force fallback even if a bundle is shipped
        a.reset()
        return a

    def test_fills_queue_to_latency_target(self):
        aurora = self.make()
        for i in range(300):
            aurora.on_interval(make_stats(time_s=(i + 1) * 0.03,
                                          avg_rtt_s=0.03, min_rtt_s=0.03))
        # With no queue it keeps growing.
        assert aurora.cwnd > 100.0

    def test_does_not_yield_at_target(self):
        aurora = self.make()
        aurora._in_slow_start = False
        aurora._rtt_min = 0.03
        aurora.cwnd = 200.0
        before = aurora.cwnd
        # At exactly the 2x latency target: holds, never yields.
        aurora.on_interval(make_stats(avg_rtt_s=0.06, min_rtt_s=0.06))
        assert aurora.cwnd == pytest.approx(before, rel=0.01)

    def test_tolerates_moderate_loss(self):
        aurora = self.make()
        aurora._in_slow_start = False
        aurora._rtt_min = 0.03
        aurora.cwnd = 100.0
        aurora.on_interval(make_stats(avg_rtt_s=0.03, lost_pkts=0.9,
                                      sent_pkts=30.0))
        # 3% loss is below Aurora's panic threshold: still grows.
        assert aurora.cwnd >= 100.0


class TestOrcaFallback:
    def make(self):
        o = Orca(policy=None)
        o.policy = None
        o.reset()
        return o

    def test_tracks_cubic_scaled(self):
        orca = self.make()
        d = orca.on_interval(make_stats())
        # Within the published 2^[-1, 1] coupling of the cubic window.
        assert d.cwnd_pkts >= orca._cubic.cwnd / 2.0
        assert d.cwnd_pkts <= orca._cubic.cwnd * 2.0

    def test_trims_under_latency_inflation(self):
        orca = self.make()
        orca._rtt_min = 0.03
        for i in range(30):
            orca.on_interval(make_stats(time_s=(i + 1) * 0.03,
                                        avg_rtt_s=0.09, min_rtt_s=0.09))
        assert orca._exponent < 0.0

    def test_boosts_when_queue_empty(self):
        orca = self.make()
        orca._rtt_min = 0.03
        for i in range(30):
            orca.on_interval(make_stats(time_s=(i + 1) * 0.03,
                                        avg_rtt_s=0.03, min_rtt_s=0.03))
        assert orca._exponent > 0.0

    def test_exponent_bounded(self):
        orca = self.make()
        orca._rtt_min = 0.001
        for i in range(50):
            orca.on_interval(make_stats(time_s=(i + 1) * 0.03,
                                        avg_rtt_s=0.5, min_rtt_s=0.5))
        assert abs(orca._exponent) <= Orca.EXPONENT_CLAMP + 1e-9

    def test_inherits_cubic_loss_response(self):
        orca = self.make()
        # Drive to a steady window, then hit a loss.
        for i in range(50):
            orca.on_interval(make_stats(time_s=(i + 1) * 0.03))
        before = orca.cwnd
        orca.on_interval(make_stats(time_s=10.0, lost_pkts=5.0,
                                    cwnd_pkts=before))
        assert orca.cwnd < before
