"""NewReno and Compound TCP."""

from __future__ import annotations

import pytest

from repro.cc import Compound, NewReno
from tests.cc.test_base import make_stats


class TestNewReno:
    def test_single_halving_per_episode(self):
        nr = NewReno()
        nr.cwnd = 100.0
        nr.ssthresh = 50.0
        nr.on_interval(make_stats(time_s=1.0, lost_pkts=3.0,
                                  delivered_pkts=10.0))
        after_first = nr.cwnd
        assert after_first == pytest.approx(50.0)
        # More loss while still recovering: no second halving.
        nr.on_interval(make_stats(time_s=1.03, lost_pkts=3.0,
                                  delivered_pkts=10.0))
        assert nr.cwnd == pytest.approx(after_first)

    def test_recovery_ends_after_window_delivered(self):
        nr = NewReno()
        nr.cwnd = 100.0
        nr.ssthresh = 50.0
        nr.on_interval(make_stats(time_s=1.0, lost_pkts=3.0))
        # Deliver a full window's worth: episode over, growth resumes.
        nr.on_interval(make_stats(time_s=1.03, delivered_pkts=60.0))
        before = nr.cwnd
        nr.on_interval(make_stats(time_s=1.06, delivered_pkts=50.0))
        assert nr.cwnd > before

    def test_slow_start_until_ssthresh(self):
        nr = NewReno()
        nr.on_interval(make_stats(delivered_pkts=10.0))
        assert nr.cwnd == pytest.approx(20.0)

    def test_reset(self):
        nr = NewReno()
        nr.on_interval(make_stats(lost_pkts=5.0))
        nr.reset()
        assert nr.cwnd == nr.initial_cwnd
        assert nr._recovery_pkts_left == 0.0


class TestCompound:
    def test_dwnd_grows_on_uncongested_path(self):
        c = Compound()
        c.ssthresh = 5.0  # force CA so growth comes from dwnd
        for i in range(20):
            c.on_interval(make_stats(time_s=(i + 1) * 0.03,
                                     avg_rtt_s=0.03, min_rtt_s=0.03))
        assert c.dwnd > 0.0

    def test_dwnd_shrinks_under_queueing(self):
        c = Compound()
        c.ssthresh = 5.0
        c.dwnd = 50.0
        c._base_rtt = 0.03
        c.cwnd = 100.0
        # Heavy backlog: well above GAMMA packets queued.
        c.on_interval(make_stats(avg_rtt_s=0.09, min_rtt_s=0.09,
                                 delivered_pkts=30.0))
        assert c.dwnd < 50.0

    def test_loss_halves_both_windows(self):
        c = Compound()
        c.cwnd = 100.0
        c.dwnd = 40.0
        before = c.send_window
        c.on_interval(make_stats(lost_pkts=3.0))
        assert c.send_window < before
        assert c.cwnd == pytest.approx(50.0)
        assert c.dwnd == pytest.approx(20.0)

    def test_faster_ramp_than_newreno_on_long_fat_path(self):
        """Compound's raison d'etre: quicker window growth when the pipe
        is empty."""
        nr, cp = NewReno(), Compound()
        nr.ssthresh = cp.ssthresh = 5.0  # both in congestion avoidance
        nr.cwnd = cp.cwnd = 50.0
        for i in range(50):
            stats = make_stats(time_s=(i + 1) * 0.03, avg_rtt_s=0.1,
                               min_rtt_s=0.1, delivered_pkts=15.0)
            nr.on_interval(stats)
            cp.on_interval(stats)
        assert cp.send_window > nr.cwnd

    def test_end_to_end_single_flow(self):
        from repro.config import FlowConfig, LinkConfig, ScenarioConfig
        from repro.env import run_scenario

        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                            buffer_bdp=1.0),
            flows=(FlowConfig(cc="compound"),),
            duration_s=12.0,
        )
        result = run_scenario(scenario)
        assert result.utilization(skip_s=4.0) > 0.85
