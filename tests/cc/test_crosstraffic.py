"""Constant-rate (unresponsive) cross traffic."""

from __future__ import annotations

import pytest

from repro.cc import ConstantRate, create
from repro.units import mbps_to_pps
from tests.cc.test_base import make_stats


class TestConstantRate:
    def test_paces_at_configured_rate(self):
        ctl = ConstantRate(rate_mbps=20.0)
        d = ctl.on_interval(make_stats())
        assert d.pacing_pps == pytest.approx(mbps_to_pps(20.0))

    def test_never_reacts_to_congestion(self):
        ctl = ConstantRate(rate_mbps=20.0)
        calm = ctl.on_interval(make_stats())
        stormy = ctl.on_interval(make_stats(avg_rtt_s=0.5, lost_pkts=20.0))
        assert calm.pacing_pps == stormy.pacing_pps

    def test_window_never_limits(self):
        ctl = ConstantRate(rate_mbps=50.0)
        d = ctl.on_interval(make_stats(srtt_s=0.1))
        # cwnd covers several RTTs of the pacing rate.
        assert d.cwnd_pkts >= 2.0 * d.pacing_pps * 0.1

    def test_registry_name(self):
        assert create("constant-rate", rate_mbps=5.0).rate_mbps == 5.0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ConstantRate(rate_mbps=0.0)

    def test_starves_responsive_flows_of_its_share(self):
        """End-to-end: a 40 Mbps blaster leaves ~60 Mbps to a cubic flow."""
        from repro.config import FlowConfig, LinkConfig, ScenarioConfig
        from repro.env import run_scenario

        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                            buffer_bdp=1.0),
            flows=(FlowConfig(cc="constant-rate",
                              cc_kwargs={"rate_mbps": 40.0}),
                   FlowConfig(cc="cubic")),
            duration_s=12.0,
        )
        result = run_scenario(scenario)
        blaster = result.flow_mean_throughput(0, skip_s=4.0)
        cubic = result.flow_mean_throughput(1, skip_s=4.0)
        assert blaster == pytest.approx(40.0, rel=0.15)
        assert cubic == pytest.approx(60.0, rel=0.25)
