"""Controller registry and interface contract."""

from __future__ import annotations

import pytest

import repro.cc as cc
from repro.errors import ConfigError
from repro.netsim.stats import MtpStats


def make_stats(**kwargs):
    defaults = dict(time_s=1.0, duration_s=0.03, throughput_pps=1000.0,
                    avg_rtt_s=0.03, min_rtt_s=0.03, sent_pkts=30.0,
                    delivered_pkts=30.0, lost_pkts=0.0, pkts_in_flight=25.0,
                    cwnd_pkts=30.0, pacing_pps=1100.0, srtt_s=0.03)
    defaults.update(kwargs)
    return MtpStats(**defaults)


ALL_SCHEMES = ["reno", "newreno", "cubic", "compound", "vegas", "bbr",
               "copa", "vivace", "remy", "aurora", "orca", "astraea",
               "astraea-ref"]


class TestRegistry:
    def test_all_schemes_registered(self):
        assert set(ALL_SCHEMES) <= set(cc.available())

    def test_create_unknown_raises(self):
        with pytest.raises(ConfigError):
            cc.create("carrier-pigeon")

    def test_double_registration_raises(self):
        with pytest.raises(ConfigError):
            @cc.register("cubic")
            class Dup(cc.CongestionController):
                def on_interval(self, stats):
                    return cc.Decision(cwnd_pkts=1.0)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_create_and_drive(self, name):
        """Every scheme survives 50 intervals and emits sane windows."""
        controller = cc.create(name)
        controller.reset()
        for i in range(50):
            decision = controller.on_interval(
                make_stats(time_s=i * 0.03 + 0.03))
            assert decision.cwnd_pkts >= 1.0
            assert decision.cwnd_pkts < 1e9
            if decision.pacing_pps is not None:
                assert decision.pacing_pps > 0

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_reset_restores_initial_window(self, name):
        controller = cc.create(name)
        for i in range(20):
            controller.on_interval(make_stats(time_s=i * 0.03 + 0.03))
        controller.reset()
        assert controller.initial_cwnd == pytest.approx(10.0)

    def test_interval_default_is_mtp(self):
        controller = cc.create("reno", mtp_s=0.02)
        assert controller.interval_s(0.5) == 0.02

    def test_rejects_nonpositive_mtp(self):
        with pytest.raises(ConfigError):
            cc.create("reno", mtp_s=0.0)
