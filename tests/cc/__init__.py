"""Test package."""
