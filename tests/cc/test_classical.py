"""Behavioural tests of the classical TCP implementations."""

from __future__ import annotations

import pytest

from repro.cc import Bbr, Copa, Cubic, Remy, Reno, Vegas
from repro.cc.remy import Whisker
from tests.cc.test_base import make_stats


class TestReno:
    def test_slow_start_growth(self):
        reno = Reno()
        start = reno.cwnd
        reno.on_interval(make_stats(delivered_pkts=10.0))
        assert reno.cwnd == pytest.approx(start + 10.0)

    def test_halves_on_loss(self):
        reno = Reno()
        reno.cwnd = 100.0
        reno.ssthresh = 50.0
        reno.on_interval(make_stats(lost_pkts=3.0))
        assert reno.cwnd == pytest.approx(50.0)

    def test_loss_cooldown_prevents_double_halving(self):
        reno = Reno()
        reno.cwnd = 100.0
        reno.on_interval(make_stats(time_s=1.0, lost_pkts=3.0))
        after_first = reno.cwnd
        reno.on_interval(make_stats(time_s=1.01, lost_pkts=3.0))
        assert reno.cwnd >= after_first

    def test_congestion_avoidance_linear(self):
        reno = Reno()
        reno.cwnd = 100.0
        reno.ssthresh = 50.0
        reno.on_interval(make_stats(delivered_pkts=100.0))
        # One packet per window per RTT worth of ACKs.
        assert reno.cwnd == pytest.approx(101.0)

    def test_never_below_min(self):
        reno = Reno()
        reno.cwnd = 2.0
        for i in range(5):
            reno.on_interval(make_stats(time_s=10 + i, lost_pkts=5.0))
        assert reno.cwnd >= Reno.MIN_CWND


class TestCubic:
    def test_reduces_by_beta_on_loss(self):
        cubic = Cubic()
        cubic.cwnd = 100.0
        cubic.ssthresh = 50.0
        cubic.on_interval(make_stats(lost_pkts=2.0))
        assert cubic.cwnd == pytest.approx(70.0)

    def test_recovers_toward_wmax(self):
        cubic = Cubic()
        cubic.cwnd = 100.0
        cubic.ssthresh = 50.0
        cubic.on_interval(make_stats(time_s=1.0, lost_pkts=2.0))
        for i in range(400):
            cubic.on_interval(make_stats(time_s=1.03 + i * 0.03,
                                         delivered_pkts=30.0))
        assert cubic.cwnd > 95.0

    def test_growth_capped_per_interval(self):
        cubic = Cubic()
        cubic.cwnd = 10.0
        cubic.ssthresh = 5.0  # force CA
        cubic._epoch_start = -100.0  # huge cubic target
        cubic._w_max = 10.0
        before = cubic.cwnd
        cubic.on_interval(make_stats(delivered_pkts=10.0))
        assert cubic.cwnd <= before * 1.5 + 1.0


class TestVegas:
    def test_holds_when_backlog_in_band(self):
        vegas = Vegas()
        vegas._slow_start = False
        vegas.cwnd = 100.0
        # 3 packets queued: between alpha=2 and beta=4.
        rtt = 0.03 / (1 - 3.0 / 100.0)
        vegas._base_rtt = 0.03
        before = vegas.cwnd
        vegas.on_interval(make_stats(avg_rtt_s=rtt, min_rtt_s=rtt))
        assert vegas.cwnd == before

    def test_increases_when_queue_empty(self):
        vegas = Vegas()
        vegas._slow_start = False
        vegas.cwnd = 100.0
        vegas._base_rtt = 0.03
        vegas.on_interval(make_stats(avg_rtt_s=0.03, min_rtt_s=0.03))
        assert vegas.cwnd == pytest.approx(101.0)

    def test_decreases_when_backlog_high(self):
        vegas = Vegas()
        vegas._slow_start = False
        vegas.cwnd = 100.0
        vegas._base_rtt = 0.03
        rtt = 0.03 / (1 - 10.0 / 100.0)  # 10 packets queued
        vegas.on_interval(make_stats(avg_rtt_s=rtt, min_rtt_s=rtt))
        assert vegas.cwnd == pytest.approx(99.0)

    def test_per_rtt_cadence(self):
        vegas = Vegas()
        assert vegas.interval_s(0.1) == pytest.approx(0.1)
        assert vegas.interval_s(0.001) == pytest.approx(vegas.mtp_s)


class TestBbr:
    def test_startup_exits_on_plateau(self):
        bbr = Bbr()
        for i in range(30):
            bbr.on_interval(make_stats(time_s=i * 0.03 + 0.03,
                                       throughput_pps=1000.0))
        assert bbr._state != "startup"

    def test_cwnd_tracks_bdp(self):
        bbr = Bbr()
        for i in range(60):
            bbr.on_interval(make_stats(time_s=i * 0.03 + 0.03,
                                       throughput_pps=1000.0,
                                       min_rtt_s=0.03, avg_rtt_s=0.03,
                                       pkts_in_flight=30.0))
        # cwnd_gain * btlbw * rtprop = 2 * 1000 * 0.03 = 60.
        assert bbr.cwnd == pytest.approx(60.0, rel=0.05)

    def test_probe_rtt_shrinks_window(self):
        bbr = Bbr()
        decisions = []
        for i in range(500):
            d = bbr.on_interval(make_stats(time_s=i * 0.03 + 0.03,
                                           throughput_pps=1000.0,
                                           min_rtt_s=0.03, avg_rtt_s=0.03,
                                           pkts_in_flight=30.0))
            decisions.append(d.cwnd_pkts)
        # PROBE_RTT fires within the 10 s rtprop window and drops to 4.
        assert min(decisions) == pytest.approx(Bbr.PROBE_RTT_CWND)


class TestCopa:
    def test_rate_moves_toward_target(self):
        copa = Copa()
        copa.cwnd = 10.0
        # Tiny queueing delay -> huge target rate -> window grows.
        before = copa.cwnd
        copa.on_interval(make_stats(avg_rtt_s=0.0301, min_rtt_s=0.03))
        assert copa.cwnd > before

    def test_backs_off_with_large_queue(self):
        copa = Copa()
        copa.cwnd = 500.0
        for i in range(10):
            copa.on_interval(make_stats(time_s=i * 0.03 + 0.03,
                                        avg_rtt_s=0.30, min_rtt_s=0.03,
                                        cwnd_pkts=500.0))
        assert copa.cwnd < 500.0

    def test_velocity_doubles_on_consistent_direction(self):
        copa = Copa()
        for i in range(8):
            copa.on_interval(make_stats(time_s=i * 0.03 + 0.03,
                                        avg_rtt_s=0.0301, min_rtt_s=0.03))
        assert copa._velocity > 1.0

    def test_heavy_loss_halves(self):
        copa = Copa()
        copa.cwnd = 100.0
        copa.on_interval(make_stats(lost_pkts=5.0, sent_pkts=30.0))
        # 16% loss is congestion-scale: halved (after the small velocity
        # step of the same interval).
        assert copa.cwnd <= 51.0

    def test_random_loss_ignored(self):
        copa = Copa()
        copa.cwnd = 100.0
        copa.on_interval(make_stats(lost_pkts=0.3, sent_pkts=30.0,
                                    avg_rtt_s=0.0301, min_rtt_s=0.03))
        # 1% loss is below Copa's congestion threshold: no halving.
        assert copa.cwnd > 60.0


class TestRemy:
    def test_lookup_matches_ratio(self):
        remy = Remy()
        whisker = remy._lookup(1.0)
        assert whisker.window_increment == 2.0
        whisker = remy._lookup(3.0)
        assert whisker.window_multiple == pytest.approx(0.85)

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            Remy(table=())

    def test_custom_table(self):
        table = (Whisker(0.0, float("inf"), 1.0, 5.0),)
        remy = Remy(table=table)
        before = remy.cwnd
        remy.on_interval(make_stats())
        assert remy.cwnd == pytest.approx(before + 5.0)

    def test_backs_off_in_deep_queue(self):
        remy = Remy()
        remy.cwnd = 100.0
        remy._rtt_min = 0.03
        remy.on_interval(make_stats(avg_rtt_s=0.12, min_rtt_s=0.12))
        assert remy.cwnd < 100.0
