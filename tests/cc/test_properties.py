"""Property-based robustness tests over every congestion controller.

Each scheme is driven through randomised-but-plausible MTP statistics
sequences (Hypothesis-generated network weather) and must uphold the
controller contract: finite positive windows, bounded growth rate,
positive pacing, and survival of pathological inputs (zero deliveries,
100% loss, RTT spikes).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cc as cc
from repro.netsim.stats import MtpStats

SCHEMES = ["reno", "newreno", "cubic", "compound", "vegas", "bbr", "copa",
           "vivace", "remy", "aurora", "orca", "astraea", "astraea-ref"]


def stats_from(draw_values, i):
    """Build one MtpStats from a tuple of draws."""
    thr, rtt_extra, loss_frac, inflight_frac = draw_values
    base = 0.03
    rtt = base + rtt_extra
    sent = max(thr * 0.03, 1.0)
    return MtpStats(
        time_s=(i + 1) * 0.03,
        duration_s=0.03,
        throughput_pps=thr,
        avg_rtt_s=rtt,
        min_rtt_s=base,
        sent_pkts=sent,
        delivered_pkts=sent * (1 - loss_frac),
        lost_pkts=sent * loss_frac,
        pkts_in_flight=inflight_frac * 100.0,
        cwnd_pkts=100.0,
        pacing_pps=thr,
        srtt_s=rtt,
    )


weather = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20000.0),   # throughput pps
        st.floats(min_value=0.0, max_value=0.3),       # extra rtt
        st.floats(min_value=0.0, max_value=1.0),       # loss fraction
        st.floats(min_value=0.0, max_value=1.5),       # inflight fraction
    ),
    min_size=5, max_size=40,
)


@pytest.mark.parametrize("name", SCHEMES)
@settings(max_examples=15, deadline=None)
@given(seq=weather)
def test_property_controller_contract(name, seq):
    controller = cc.create(name)
    controller.reset()
    prev_cwnd = controller.initial_cwnd
    prev_rtt = 0.03
    for i, draws in enumerate(seq):
        stats = stats_from(draws, i)
        decision = controller.on_interval(stats)
        # Contract: finite, positive, sane magnitude.
        assert np.isfinite(decision.cwnd_pkts)
        assert 1.0 <= decision.cwnd_pkts < 1e9
        if decision.pacing_pps is not None:
            assert np.isfinite(decision.pacing_pps)
            assert decision.pacing_pps > 0
        # Bounded per-interval growth.  Rate-based schemes derive cwnd as
        # rate * rtt, so an RTT jump legitimately scales the window; the
        # bound therefore stretches with the observed RTT ratio, plus a
        # small-window floor for additive bumps near minimum windows.
        rtt_ratio = max(stats.avg_rtt_s / prev_rtt, 1.0)
        ack_clocked = prev_cwnd + stats.delivered_pkts + 4.0
        # Model-based schemes (BBR, Vivace) set the window from a measured
        # delivery rate, so a bandwidth jump legitimately re-anchors it.
        model_based = 8.0 * stats.throughput_pps * stats.avg_rtt_s + 80.0
        bound = max(prev_cwnd * 3.0 * rtt_ratio, ack_clocked, model_based,
                    80.0)
        assert decision.cwnd_pkts <= bound * 1.1
        prev_cwnd = decision.cwnd_pkts
        prev_rtt = max(stats.avg_rtt_s, 1e-3)
        # Interval must be positive and bounded.
        interval = controller.interval_s(max(draws[1] + 0.03, 1e-3))
        assert 0 < interval < 10.0


@pytest.mark.parametrize("name", SCHEMES)
def test_survives_total_blackout(name):
    """Ten intervals of 100% loss and zero delivery must not crash or
    produce a non-finite window."""
    controller = cc.create(name)
    controller.reset()
    for i in range(10):
        stats = MtpStats(
            time_s=(i + 1) * 0.03, duration_s=0.03, throughput_pps=0.0,
            avg_rtt_s=0.5, min_rtt_s=0.03, sent_pkts=30.0,
            delivered_pkts=0.0, lost_pkts=30.0, pkts_in_flight=100.0,
            cwnd_pkts=100.0, pacing_pps=0.0, srtt_s=0.5)
        decision = controller.on_interval(stats)
        assert np.isfinite(decision.cwnd_pkts)
        assert decision.cwnd_pkts >= 1.0


@pytest.mark.parametrize("name", SCHEMES)
def test_reset_is_idempotent_and_complete(name):
    """After reset, a controller's decision stream restarts identically."""
    a, b = cc.create(name), cc.create(name)
    seq = [(1000.0 * (i + 1), 0.005 * i, 0.0, 0.8) for i in range(8)]
    for i, draws in enumerate(seq):
        a.on_interval(stats_from(draws, i))
    a.reset()
    b.reset()
    for i, draws in enumerate(seq):
        da = a.on_interval(stats_from(draws, i))
        db = b.on_interval(stats_from(draws, i))
        assert da.cwnd_pkts == pytest.approx(db.cwnd_pkts, rel=1e-9), i
