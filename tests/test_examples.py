"""Smoke-check that every example script at least parses and has a main.

Running the examples end-to-end takes minutes each; the benchmark suite
covers the same code paths.  Here we verify the scripts are importable
units with docstrings and a ``main`` entry point, so bit-rot is caught.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_with_docstring_and_main(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} missing module docstring"
    names = {node.name for node in ast.walk(tree)
             if isinstance(node, ast.FunctionDef)}
    assert "main" in names, f"{path.name} missing main()"
    # Guarded entry point present.
    has_guard = any(
        isinstance(node, ast.If) and isinstance(node.test, ast.Compare)
        for node in tree.body)
    assert has_guard, f"{path.name} missing __main__ guard"


def test_examples_exist():
    assert len(EXAMPLES) >= 6
