"""Scenario/result persistence."""

from __future__ import annotations

import pytest

from repro import persist
from repro.config import FlowConfig, LinkConfig, ScenarioConfig
from repro.env import run_scenario
from repro.errors import ConfigError


def make_scenario():
    return ScenarioConfig(
        link=LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0, buffer_bdp=1.0,
                        qdisc="red", qdisc_kwargs={"min_th_pkts": 10.0,
                                                   "max_th_pkts": 40.0}),
        flows=(FlowConfig(cc="cubic", start_s=0.0, duration_s=5.0),
               FlowConfig(cc="vegas", start_s=1.0, extra_rtt_ms=10.0)),
        duration_s=6.0,
        trace="constant",
        trace_kwargs={"mbps": 50.0},
        seed=3,
    )


class TestScenarioRoundtrip:
    def test_dict_roundtrip(self):
        scenario = make_scenario()
        rebuilt = persist.scenario_from_dict(
            persist.scenario_to_dict(scenario))
        assert rebuilt == scenario

    def test_file_roundtrip(self, tmp_path):
        scenario = make_scenario()
        path = persist.save_scenario(scenario, tmp_path / "s.json")
        assert persist.load_scenario(path) == scenario

    def test_defaults_filled(self):
        data = {"link": {"bandwidth_mbps": 10.0},
                "flows": [{"cc": "cubic"}]}
        scenario = persist.scenario_from_dict(data)
        assert scenario.duration_s == 60.0
        assert scenario.mtp_s == 0.030

    def test_malformed_raises(self):
        with pytest.raises(ConfigError):
            persist.scenario_from_dict({"flows": [{"cc": "cubic"}]})
        with pytest.raises(ConfigError):
            persist.scenario_from_dict({"link": {"nope": 1},
                                        "flows": []})

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            persist.load_scenario(tmp_path / "missing.json")


class TestResultRoundtrip:
    def test_metrics_survive_roundtrip(self, tmp_path):
        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0),
            flows=(FlowConfig(cc="cubic"), FlowConfig(cc="cubic")),
            duration_s=6.0,
        )
        result = run_scenario(scenario)
        path = persist.save_result(result, tmp_path / "r.json")
        loaded = persist.load_result(path)
        assert loaded.mean_jain() == pytest.approx(result.mean_jain())
        assert loaded.utilization() == pytest.approx(result.utilization())
        assert loaded.flows[0].cc_name == "cubic"
        assert len(loaded.flows) == 2

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            persist.load_result(tmp_path / "missing.json")
