"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import persist
from repro.cli import build_parser, main


class TestTemplate:
    def test_emits_valid_scenario(self, capsys):
        assert main(["template"]) == 0
        out = capsys.readouterr().out
        scenario = persist.scenario_from_dict(json.loads(out))
        assert scenario.link.bandwidth_mbps == 100.0
        assert len(scenario.flows) == 3


class TestInfo:
    def test_lists_everything(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for needle in ("astraea", "cubic", "lte", "codel",
                       "astraea_pretrained"):
            assert needle in out


class TestRun:
    def test_runs_scenario_file(self, tmp_path, capsys):
        scenario_path = tmp_path / "s.json"
        main(["template"])
        template = capsys.readouterr().out
        data = json.loads(template)
        data["duration_s"] = 6.0
        for f in data["flows"]:
            f["cc"] = "cubic"
            f["duration_s"] = 5.0
            f["start_s"] = 0.0
        scenario_path.write_text(json.dumps(data))
        out_path = tmp_path / "result.json"
        assert main(["run", str(scenario_path), "--out",
                     str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "mean_jain" in out
        assert out_path.exists()
        loaded = persist.load_result(out_path)
        assert len(loaded.flows) == 3


class TestCompare:
    def test_two_scheme_table(self, capsys):
        assert main(["compare", "--schemes", "cubic,vegas",
                     "--duration", "8", "--flow-duration", "6",
                     "--interval", "1", "--flows", "2"]) == 0
        out = capsys.readouterr().out
        assert "cubic" in out and "vegas" in out
        assert "Jain" in out


class TestModels:
    @pytest.fixture
    def stamped_dir(self, tmp_path):
        """A models dir with one valid, manifest-listed bundle."""
        from repro.core.artifacts import manifest_entry, update_manifest
        from repro.core.policy import PolicyBundle, new_actor

        PolicyBundle(actor=new_actor(seed=1)).save(
            tmp_path / "astraea_pretrained.npz")
        update_manifest(
            {"astraea_pretrained.npz":
             manifest_entry(tmp_path / "astraea_pretrained.npz")}, tmp_path)
        return tmp_path

    def test_verify_clean_exits_zero(self, stamped_dir, capsys):
        assert main(["models", "verify", "--models-dir",
                     str(stamped_dir)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_corrupt_exits_nonzero_naming_file(self, stamped_dir,
                                                      capsys):
        path = stamped_dir / "astraea_pretrained.npz"
        path.write_bytes(path.read_bytes()[:1000])
        assert main(["models", "verify", "--models-dir",
                     str(stamped_dir)]) == 1
        captured = capsys.readouterr()
        assert "astraea_pretrained.npz" in captured.err
        assert "regenerate" in captured.err

    def test_info_prints_digests(self, stamped_dir, capsys):
        assert main(["models", "info", "--models-dir",
                     str(stamped_dir)]) == 0
        out = capsys.readouterr().out
        assert "sha256" in out and "astraea_pretrained.npz" in out

    def test_regenerate_restores_manifest_clean_state(self, tmp_path,
                                                      capsys):
        # Start from a *corrupt* artifact: regenerate must repair it and
        # leave verify green.
        (tmp_path / "astraea_alt_homogeneous.npz").write_bytes(b"garbage")
        assert main(["models", "regenerate", "astraea_alt_homogeneous.npz",
                     "--models-dir", str(tmp_path), "--epochs", "3"]) == 0
        assert main(["models", "verify", "--models-dir",
                     str(tmp_path)]) == 0
        from repro.core.policy import PolicyBundle

        bundle = PolicyBundle.load(tmp_path / "astraea_alt_homogeneous.npz")
        assert bundle.scheme == "astraea"

    def test_regenerate_unknown_name_exits_two(self, tmp_path, capsys):
        assert main(["models", "regenerate", "nope.npz",
                     "--models-dir", str(tmp_path)]) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8731
        assert args.scheme == "astraea"
        assert args.window == pytest.approx(0.005)
        assert args.deadline == pytest.approx(0.050)
        assert args.fallback == "analytic"
        assert args.shards == 1

    def test_serve_rejects_unknown_fallback(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--fallback", "magic"])

    def test_bench_serve_small(self):
        args = build_parser().parse_args(["bench", "serve", "--small"])
        assert args.small
        assert args.func is not None

    def test_bench_serve_custom_levels_and_connect(self):
        args = build_parser().parse_args(
            ["bench", "serve", "--levels", "4,16",
             "--connect", "127.0.0.1:9001,127.0.0.1:9002"])
        assert args.levels == "4,16"
        assert args.connect == "127.0.0.1:9001,127.0.0.1:9002"


class TestSocketParser:
    def test_serve_max_restarts_default_and_override(self):
        args = build_parser().parse_args(["serve"])
        assert args.max_restarts == 5
        args = build_parser().parse_args(["serve", "--max-restarts", "0"])
        assert args.max_restarts == 0

    def test_bench_socket_defaults(self):
        args = build_parser().parse_args(["bench", "socket"])
        assert args.seed == 1
        assert not args.small
        assert not args.smoke
        assert args.func is not None

    def test_bench_socket_smoke_and_small(self):
        args = build_parser().parse_args(
            ["bench", "socket", "--smoke", "--seed", "3"])
        assert args.smoke and args.seed == 3
        args = build_parser().parse_args(
            ["bench", "socket", "--small", "--out-dir", "/tmp/x"])
        assert args.small and args.out_dir == "/tmp/x"

    def test_bench_robustness_accepts_socket_engine(self):
        args = build_parser().parse_args(
            ["bench", "robustness", "--small", "--engines", "socket"])
        assert args.engines == "socket"


class TestTrainBenchParser:
    def test_bench_train_defaults(self):
        args = build_parser().parse_args(["bench", "train"])
        assert args.flows == 8
        assert args.episodes == 3
        assert args.workers == 2
        assert not args.small
        assert not args.check_only
        assert args.func is not None

    def test_bench_train_check_only_and_small(self):
        args = build_parser().parse_args(["bench", "train", "--check-only"])
        assert args.check_only
        args = build_parser().parse_args(
            ["bench", "train", "--small", "--out-dir", "/tmp/x"])
        assert args.small and args.out_dir == "/tmp/x"

    def test_bench_robustness_accepts_policy_override(self):
        args = build_parser().parse_args(
            ["bench", "robustness", "--schemes", "astraea",
             "--policy", "models/candidate.npz"])
        assert args.policy == "models/candidate.npz"
