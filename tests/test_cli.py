"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import persist
from repro.cli import build_parser, main


class TestTemplate:
    def test_emits_valid_scenario(self, capsys):
        assert main(["template"]) == 0
        out = capsys.readouterr().out
        scenario = persist.scenario_from_dict(json.loads(out))
        assert scenario.link.bandwidth_mbps == 100.0
        assert len(scenario.flows) == 3


class TestInfo:
    def test_lists_everything(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for needle in ("astraea", "cubic", "lte", "codel",
                       "astraea_pretrained"):
            assert needle in out


class TestRun:
    def test_runs_scenario_file(self, tmp_path, capsys):
        scenario_path = tmp_path / "s.json"
        main(["template"])
        template = capsys.readouterr().out
        data = json.loads(template)
        data["duration_s"] = 6.0
        for f in data["flows"]:
            f["cc"] = "cubic"
            f["duration_s"] = 5.0
            f["start_s"] = 0.0
        scenario_path.write_text(json.dumps(data))
        out_path = tmp_path / "result.json"
        assert main(["run", str(scenario_path), "--out",
                     str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "mean_jain" in out
        assert out_path.exists()
        loaded = persist.load_result(out_path)
        assert len(loaded.flows) == 3


class TestCompare:
    def test_two_scheme_table(self, capsys):
        assert main(["compare", "--schemes", "cubic,vegas",
                     "--duration", "8", "--flow-duration", "6",
                     "--interval", "1", "--flows", "2"]) == 0
        out = capsys.readouterr().out
        assert "cubic" in out and "vegas" in out
        assert "Jain" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
