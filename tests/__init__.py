"""Test package."""
