"""The parallel execution layer: determinism, ordering, failure wrapping.

The pool-path tests spawn real worker processes; their worker functions
live at module level so the spawn children can import them
(``tests.test_parallel`` resolves through the propagated ``sys.path``).
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigError, TaskError
from repro.parallel import WORKERS_ENV, parallel_map, resolve_workers


def square(x):
    return x * x


def fail_on_three(x):
    if x == 3:
        raise ValueError(f"bad payload {x}")
    return x


def interrupt_on_two(x):
    if x == 2:
        raise KeyboardInterrupt
    return x


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers(None) == 4

    def test_env_non_integer_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ConfigError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            resolve_workers(-1)

    @pytest.mark.parametrize("n", [0, 1])
    def test_zero_and_one_mean_serial(self, n):
        assert resolve_workers(n) == n


class TestSerialPath:
    def test_ordered_results(self):
        assert parallel_map(square, [3, 1, 2], workers=0) == [9, 1, 4]

    def test_progress_monotone_and_in_order(self):
        seen = []
        parallel_map(square, [5, 6, 7], workers=1,
                     progress=lambda done, total, i, r:
                     seen.append((done, total, i, r)))
        assert seen == [(1, 3, 0, 25), (2, 3, 1, 36), (3, 3, 2, 49)]

    def test_failure_wrapped_with_context(self):
        with pytest.raises(TaskError) as info:
            parallel_map(fail_on_three, [1, 3, 5], workers=0,
                         describe=lambda p: f"payload #{p}")
        err = info.value
        assert err.index == 1
        assert err.context == "payload #3"
        assert err.cause_type == "ValueError"
        assert isinstance(err.__cause__, ValueError)
        assert "payload #3" in str(err)

    def test_default_describe_uses_repr(self):
        with pytest.raises(TaskError, match="3"):
            parallel_map(fail_on_three, [3], workers=0)

    def test_keyboard_interrupt_not_wrapped(self):
        ran = []

        def fn(x):
            if x == 2:
                raise KeyboardInterrupt
            ran.append(x)
            return x

        with pytest.raises(KeyboardInterrupt):
            parallel_map(fn, [1, 2, 3], workers=0)
        assert ran == [1]  # nothing past the interrupt runs

    def test_empty_payloads(self):
        assert parallel_map(square, [], workers=2) == []

    def test_single_payload_stays_serial(self):
        # One task never pays pool startup, even with workers=2.
        assert parallel_map(lambda x: x + 1, [41], workers=2) == [42]


class TestPoolPath:
    def test_ordered_results_match_serial(self):
        payloads = list(range(6))
        serial = parallel_map(square, payloads, workers=0)
        pooled = parallel_map(square, payloads, workers=2)
        assert pooled == serial

    def test_progress_done_count_monotone(self):
        seen = []
        parallel_map(square, [1, 2, 3, 4], workers=2,
                     progress=lambda done, total, i, r:
                     seen.append((done, total)))
        assert [d for d, _ in seen] == [1, 2, 3, 4]
        assert all(t == 4 for _, t in seen)

    def test_worker_failure_wrapped_with_context(self):
        with pytest.raises(TaskError) as info:
            parallel_map(fail_on_three, [1, 3], workers=2,
                         describe=lambda p: f"payload #{p}")
        assert info.value.context == "payload #3"
        assert info.value.cause_type == "ValueError"

    def test_worker_keyboard_interrupt_propagates(self):
        with pytest.raises(KeyboardInterrupt):
            parallel_map(interrupt_on_two, [1, 2], workers=2)

    def test_env_var_engages_pool(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert parallel_map(square, [2, 3], workers=None) == [4, 9]
