"""Run summaries and distribution helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import cdf, percentile_summary, summarize
from repro.metrics.summary import RunSummary


class TestSummarize:
    def test_fields(self, reference_three_flow_result):
        summary = summarize(reference_three_flow_result, "astraea-ref")
        assert summary.scheme == "astraea-ref"
        assert 0.9 < summary.utilization <= 1.05
        assert 0.9 < summary.mean_jain <= 1.0
        assert 25.0 < summary.mean_rtt_ms < 60.0
        assert summary.mean_loss_rate < 0.01

    def test_as_dict(self, reference_three_flow_result):
        d = summarize(reference_three_flow_result, "x").as_dict()
        assert set(d) == {"scheme", "utilization", "mean_jain",
                          "mean_rtt_ms", "mean_loss_rate",
                          "convergence_time_s", "stability_mbps"}


class TestCdf:
    def test_monotone(self):
        x, f = cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(f) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, f = cdf([])
        assert len(x) == 0 and len(f) == 0


class TestPercentiles:
    def test_median(self):
        p = percentile_summary(np.arange(101), percentiles=(50,))
        assert p[50] == pytest.approx(50.0)

    def test_default_keys(self):
        p = percentile_summary([1.0, 2.0, 3.0])
        assert set(p) == {5, 25, 50, 75, 95}
