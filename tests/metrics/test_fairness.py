"""Fairness metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.metrics import (
    FairnessAccumulator,
    astraea_fairness_metric,
    jain_index,
    max_min_fair_shares,
)


class TestJain:
    def test_equal_allocation(self):
        assert jain_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_winner_takes_all(self):
        assert jain_index([30.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_known_value(self):
        # (60+40)^2 / (2*(3600+1600)) = 10000/10400.
        assert jain_index([60.0, 40.0]) == pytest.approx(10000.0 / 10400.0)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ConfigError):
            jain_index([])
        with pytest.raises(ConfigError):
            jain_index([-1.0, 2.0])

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6),
                    min_size=1, max_size=10))
    def test_property_range(self, xs):
        j = jain_index(xs)
        assert 1.0 / len(xs) - 1e-9 <= j <= 1.0 + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(xs=st.lists(st.floats(min_value=0.1, max_value=1e4),
                       min_size=2, max_size=8),
           scale=st.floats(min_value=0.1, max_value=100.0))
    def test_property_scale_invariant(self, xs, scale):
        assert jain_index(xs) == pytest.approx(
            jain_index([x * scale for x in xs]))


def _partition(xs: list, cuts: list[int]) -> list[list]:
    """Split ``xs`` into contiguous non-empty-where-possible parts."""
    bounds = sorted({min(c % (len(xs) + 1), len(xs)) for c in cuts})
    parts, prev = [], 0
    for b in bounds + [len(xs)]:
        parts.append(xs[prev:b])
        prev = b
    return parts


class TestFairnessAccumulator:
    def test_matches_direct_jain(self):
        xs = [60.0, 40.0, 10.0]
        acc = FairnessAccumulator().add(xs, capacity=200.0)
        assert acc.jain() == pytest.approx(jain_index(xs), abs=1e-12)
        assert acc.utilization() == pytest.approx(sum(xs) / 200.0)

    def test_all_zero_is_fair(self):
        acc = FairnessAccumulator().add([0.0, 0.0], capacity=10.0)
        assert acc.jain() == 1.0
        assert acc.utilization() == 0.0

    def test_empty_jain_and_zero_capacity_are_typed(self):
        acc = FairnessAccumulator()
        with pytest.raises(ConfigError):
            acc.jain()
        with pytest.raises(ConfigError):
            acc.utilization()

    def test_rejects_bad_inputs(self):
        acc = FairnessAccumulator()
        with pytest.raises(ConfigError):
            acc.add([-1.0])
        with pytest.raises(ConfigError):
            acc.add([float("nan")])
        with pytest.raises(ConfigError):
            acc.add([1.0], capacity=float("inf"))

    def test_dict_round_trip(self):
        acc = FairnessAccumulator().add([3.0, 4.0], capacity=10.0)
        clone = FairnessAccumulator.from_dict(acc.as_dict())
        assert clone == acc
        with pytest.raises(ConfigError):
            FairnessAccumulator.from_dict({"count": 1})

    def test_merge_counts_batches(self):
        a = FairnessAccumulator().add([1.0], capacity=5.0)
        b = FairnessAccumulator().add([2.0], capacity=5.0)
        merged = a.merge(b)
        assert merged.batches == 2
        assert merged.count == 2
        assert merged.capacity == 10.0

    # The satellite property: merged per-shard statistics equal the
    # monolithic computation on the concatenated flows, at 1e-9.
    @settings(max_examples=200, deadline=None)
    @given(xs=st.lists(st.floats(min_value=0.0, max_value=1e6),
                       min_size=1, max_size=24),
           cuts=st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=0, max_size=5),
           cap=st.floats(min_value=1.0, max_value=1e6))
    def test_property_merge_equals_monolithic(self, xs, cuts, cap):
        parts = _partition(xs, cuts)
        per_flow_cap = cap / len(xs)
        merged = FairnessAccumulator()
        for part in parts:
            shard = FairnessAccumulator()
            shard.add(part, capacity=per_flow_cap * len(part))
            merged.merge(shard)
        mono = FairnessAccumulator().add(xs, capacity=cap)
        assert merged.count == mono.count == len(xs)
        assert merged.jain() == pytest.approx(jain_index(xs), abs=1e-9)
        assert merged.jain() == pytest.approx(mono.jain(), abs=1e-9)
        assert merged.utilization() == pytest.approx(mono.utilization(),
                                                     rel=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(xs=st.lists(st.floats(min_value=0.0, max_value=1e6),
                       min_size=2, max_size=16),
           cuts=st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=1, max_size=4))
    def test_property_partition_invariance(self, xs, cuts):
        """Any split of the same flows merges to the same statistics."""
        half = FairnessAccumulator()
        for part in _partition(xs, [len(xs) // 2]):
            half.merge(FairnessAccumulator().add(part, capacity=1.0))
        other = FairnessAccumulator()
        for part in _partition(xs, cuts):
            other.merge(FairnessAccumulator().add(part, capacity=1.0))
        assert half.count == other.count
        assert half.total == pytest.approx(other.total, rel=1e-12)
        assert half.sum_sq == pytest.approx(other.sum_sq, rel=1e-12)


class TestAstraeaMetric:
    def test_zero_at_equality(self):
        assert astraea_fairness_metric([5.0, 5.0]) == 0.0

    def test_saturation_contrast_with_jain(self):
        """Fig. 4: near equality, R_fair keeps moving while Jain flattens."""
        gaps = [0.0, 10.0, 20.0, 40.0]
        jains, fairs = [], []
        for g in gaps:
            alloc = [50.0 + g / 2, 50.0 - g / 2]
            jains.append(1.0 - jain_index(alloc))
            fairs.append(astraea_fairness_metric(alloc))
        # First 20 Mbps of gap: R_fair moves 0.1, Jain only ~0.038.
        assert fairs[2] - fairs[0] > 2.5 * (jains[2] - jains[0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            astraea_fairness_metric([])


class TestMaxMin:
    def test_elastic_flows_split_evenly(self):
        shares = max_min_fair_shares([np.inf, np.inf], 100.0)
        assert shares == pytest.approx([50.0, 50.0])

    def test_small_demand_capped(self):
        shares = max_min_fair_shares([10.0, np.inf, np.inf], 100.0)
        assert shares == pytest.approx([10.0, 45.0, 45.0])

    def test_all_demands_satisfiable(self):
        shares = max_min_fair_shares([10.0, 20.0], 100.0)
        assert shares == pytest.approx([10.0, 20.0])

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            max_min_fair_shares([-1.0], 10.0)
        with pytest.raises(ConfigError):
            max_min_fair_shares([1.0], -10.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=6),
           st.floats(min_value=1.0, max_value=500.0))
    def test_property_feasible_and_capped(self, demands, capacity):
        shares = max_min_fair_shares(demands, capacity)
        assert np.all(shares <= np.asarray(demands) + 1e-9)
        assert shares.sum() <= capacity + 1e-6
