"""Fairness metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.metrics import (
    astraea_fairness_metric,
    jain_index,
    max_min_fair_shares,
)


class TestJain:
    def test_equal_allocation(self):
        assert jain_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_winner_takes_all(self):
        assert jain_index([30.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_known_value(self):
        # (60+40)^2 / (2*(3600+1600)) = 10000/10400.
        assert jain_index([60.0, 40.0]) == pytest.approx(10000.0 / 10400.0)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ConfigError):
            jain_index([])
        with pytest.raises(ConfigError):
            jain_index([-1.0, 2.0])

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6),
                    min_size=1, max_size=10))
    def test_property_range(self, xs):
        j = jain_index(xs)
        assert 1.0 / len(xs) - 1e-9 <= j <= 1.0 + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(xs=st.lists(st.floats(min_value=0.1, max_value=1e4),
                       min_size=2, max_size=8),
           scale=st.floats(min_value=0.1, max_value=100.0))
    def test_property_scale_invariant(self, xs, scale):
        assert jain_index(xs) == pytest.approx(
            jain_index([x * scale for x in xs]))


class TestAstraeaMetric:
    def test_zero_at_equality(self):
        assert astraea_fairness_metric([5.0, 5.0]) == 0.0

    def test_saturation_contrast_with_jain(self):
        """Fig. 4: near equality, R_fair keeps moving while Jain flattens."""
        gaps = [0.0, 10.0, 20.0, 40.0]
        jains, fairs = [], []
        for g in gaps:
            alloc = [50.0 + g / 2, 50.0 - g / 2]
            jains.append(1.0 - jain_index(alloc))
            fairs.append(astraea_fairness_metric(alloc))
        # First 20 Mbps of gap: R_fair moves 0.1, Jain only ~0.038.
        assert fairs[2] - fairs[0] > 2.5 * (jains[2] - jains[0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            astraea_fairness_metric([])


class TestMaxMin:
    def test_elastic_flows_split_evenly(self):
        shares = max_min_fair_shares([np.inf, np.inf], 100.0)
        assert shares == pytest.approx([50.0, 50.0])

    def test_small_demand_capped(self):
        shares = max_min_fair_shares([10.0, np.inf, np.inf], 100.0)
        assert shares == pytest.approx([10.0, 45.0, 45.0])

    def test_all_demands_satisfiable(self):
        shares = max_min_fair_shares([10.0, 20.0], 100.0)
        assert shares == pytest.approx([10.0, 20.0])

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            max_min_fair_shares([-1.0], 10.0)
        with pytest.raises(ConfigError):
            max_min_fair_shares([1.0], -10.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=6),
           st.floats(min_value=1.0, max_value=500.0))
    def test_property_feasible_and_capped(self, demands, capacity):
        shares = max_min_fair_shares(demands, capacity)
        assert np.all(shares <= np.asarray(demands) + 1e-9)
        assert shares.sum() <= capacity + 1e-6
