"""Recovery metrics: hypothesis properties and scenario-level behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.env.multiflow import FlowLog, ScenarioResult
from repro.errors import ConfigError
from repro.metrics.recovery import (
    NEVER_RECOVERED,
    recovery_report,
    recovery_time_s,
    steady_state_mbps,
)
from repro.netsim.faults import Blackout, FaultSchedule, LossBurst


# ----------------------------------------------------------------------
# Strategies: a monotone time axis with one throughput value per sample.
# ----------------------------------------------------------------------

@st.composite
def traces(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    steps = draw(hnp.arrays(np.float64, n,
                            elements=st.floats(0.01, 2.0)))
    times = np.cumsum(steps)
    values = draw(hnp.arrays(np.float64, n,
                             elements=st.floats(0.0, 100.0)))
    # A fault that clears somewhere inside (or slightly past) the trace.
    fault_end = draw(st.floats(min_value=float(times[0]),
                               max_value=float(times[-1]) * 1.2))
    return times, values, fault_end


class TestRecoveryTimeProperties:
    @given(traces(), st.floats(0.0, 120.0))
    @settings(max_examples=150, deadline=None)
    def test_non_negative_and_bounded_by_trace(self, trace, target):
        times, values, fault_end = trace
        t = recovery_time_s(times, values, fault_end, target)
        if np.isfinite(t):
            assert t >= 0.0
            assert t <= float(times[-1] - times[0]) + 1e-9

    @given(traces(), st.floats(0.0, 60.0), st.floats(0.0, 60.0))
    @settings(max_examples=150, deadline=None)
    def test_monotone_in_target(self, trace, a, b):
        times, values, fault_end = trace
        lo, hi = min(a, b), max(a, b)
        assert recovery_time_s(times, values, fault_end, lo) <= \
            recovery_time_s(times, values, fault_end, hi)

    @given(traces(), st.floats(0.0, 60.0), st.floats(-100.0, 100.0))
    @settings(max_examples=150, deadline=None)
    def test_invariant_under_time_shift(self, trace, target, shift):
        times, values, fault_end = trace
        # A fault boundary within one ulp of a sample time can flip the
        # `t >= fault_end` comparison once the shift re-rounds both
        # sides; that is float arithmetic, not the metric.  Skip draws
        # that sit on the knife edge.
        assume(float(np.abs(times - fault_end).min()) > 1e-7)
        base = recovery_time_s(times, values, fault_end, target)
        shifted = recovery_time_s(times + shift, values,
                                  fault_end + shift, target)
        if np.isfinite(base):
            assert shifted == pytest.approx(base, abs=1e-9)
        else:
            assert shifted == NEVER_RECOVERED

    @given(traces())
    @settings(max_examples=150, deadline=None)
    def test_sentinel_when_never_reattained(self, trace):
        times, values, fault_end = trace
        post = values[times >= fault_end]
        unreachable = (float(post.max()) if post.size else 0.0) + 1.0
        assert recovery_time_s(times, values, fault_end,
                               unreachable) == NEVER_RECOVERED

    @given(traces(), st.floats(0.0, 60.0), st.floats(0.0, 5.0))
    @settings(max_examples=100, deadline=None)
    def test_hold_window_never_speeds_recovery(self, trace, target, hold):
        times, values, fault_end = trace
        assert recovery_time_s(times, values, fault_end, target,
                               hold_s=hold) >= \
            recovery_time_s(times, values, fault_end, target)


class TestRecoveryTimeUnits:
    def test_immediate_recovery_is_zero(self):
        t = recovery_time_s([0.0, 1.0, 2.0], [10.0, 10.0, 10.0],
                            fault_end_s=1.0, target=5.0)
        assert t == 0.0

    def test_finds_first_sustained_crossing(self):
        times = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        values = [10.0, 0.0, 8.0, 2.0, 9.0, 9.0]
        # At t=2 throughput pops above target but drops again within the
        # 2 s hold; the sustained crossing is t=4.
        t = recovery_time_s(times, values, fault_end_s=1.0, target=5.0,
                            hold_s=2.0)
        assert t == pytest.approx(3.0)

    def test_fault_past_trace_end_is_sentinel(self):
        assert recovery_time_s([0.0, 1.0], [5.0, 5.0], fault_end_s=2.0,
                               target=1.0) == NEVER_RECOVERED

    def test_empty_trace_is_sentinel(self):
        assert recovery_time_s([], [], 0.0, 1.0) == NEVER_RECOVERED

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            recovery_time_s([0.0, 1.0], [1.0], 0.0, 1.0)
        with pytest.raises(ConfigError):
            recovery_time_s([0.0], [1.0], 0.0, 1.0, hold_s=-1.0)


class TestSteadyState:
    def test_pre_fault_mean_after_warmup(self):
        times = np.arange(0.0, 10.0, 0.5)
        values = np.where(times < 2.0, 0.0, 50.0)
        assert steady_state_mbps(times, values, fault_start_s=8.0,
                                 warmup_s=2.0) == pytest.approx(50.0)

    def test_early_fault_relaxes_warmup(self):
        # Fault at t=1 with a 2 s warmup: fall back to every pre-fault
        # sample rather than returning the fallback.
        times = np.array([0.25, 0.5, 0.75, 1.5])
        values = np.array([10.0, 20.0, 30.0, 99.0])
        assert steady_state_mbps(times, values, fault_start_s=1.0,
                                 warmup_s=2.0) == pytest.approx(20.0)

    def test_fault_at_zero_uses_fallback(self):
        assert steady_state_mbps([1.0, 2.0], [5.0, 5.0],
                                 fault_start_s=0.0, warmup_s=2.0,
                                 fallback=123.0) == 123.0


# ----------------------------------------------------------------------
# Scenario-level report on synthetic results (no simulation needed).
# ----------------------------------------------------------------------

def synthetic_result(duration=20.0, dip=(8.0, 10.0), level=40.0,
                     recover_at=None, n_flows=2, rtt=0.03):
    """Flows at ``level`` Mbps each, zeroed inside ``dip``; recovery at
    ``recover_at`` (default: end of the dip)."""
    recover_at = dip[1] if recover_at is None else recover_at
    flows = []
    for _ in range(n_flows):
        log = FlowLog(cc_name="synthetic", start_s=0.0, end_s=duration)
        t = 0.05
        while t < duration:
            log.times.append(t)
            in_dip = dip[0] <= t < recover_at
            log.throughput_mbps.append(0.0 if in_dip else level)
            log.rtt_s.append(rtt * (2.0 if in_dip else 1.0))
            log.loss_rate.append(0.0)
            log.cwnd_pkts.append(10.0)
            log.send_rate_mbps.append(level)
            t += 0.1
        flows.append(log)
    return ScenarioResult(flows=flows, duration_s=duration,
                          bottleneck_mbps=level * n_flows, base_rtt_s=rtt)


class TestRecoveryReport:
    def test_clean_recovery_measured(self):
        faults = FaultSchedule((Blackout(8.0, 2.0),))
        result = synthetic_result(recover_at=12.0)
        rep = recovery_report(result, faults)
        assert rep.recovered
        # Dip ends at t=12, fault cleared at t=10: ~2 s to recover.
        assert rep.recovery_time_s == pytest.approx(2.0, abs=0.5)
        assert rep.baseline_mbps == pytest.approx(80.0, rel=0.05)
        assert rep.peak_rtt_overshoot_ms == pytest.approx(30.0, abs=5.0)
        assert rep.goodput_lost_mbit == pytest.approx(4.0 * 80.0, rel=0.2)

    def test_never_recovered_sentinel(self):
        faults = FaultSchedule((Blackout(8.0, 2.0),))
        result = synthetic_result(recover_at=1e9)  # throughput never back
        rep = recovery_report(result, faults)
        assert not rep.recovered
        assert rep.recovery_time_s == NEVER_RECOVERED

    def test_fault_at_zero_uses_capacity_baseline(self):
        faults = FaultSchedule((Blackout(0.0, 1.0),))
        result = synthetic_result(dip=(0.0, 1.0))
        rep = recovery_report(result, faults)
        assert rep.baseline_mbps == result.bottleneck_mbps
        assert np.isfinite(rep.recovery_time_s)
        assert rep.goodput_lost_mbit >= 0.0

    def test_fault_past_episode_end_is_sentinel(self):
        faults = FaultSchedule((Blackout(18.0, 50.0),))
        result = synthetic_result(dip=(18.0, 20.0))
        rep = recovery_report(result, faults)
        assert not rep.recovered
        assert rep.goodput_lost_mbit >= 0.0
        assert np.isfinite(rep.peak_rtt_overshoot_ms)

    def test_sub_mtp_fault_is_well_defined(self):
        # 10 ms fault, shorter than both the MTP and the metric grid.
        faults = FaultSchedule((LossBurst(8.0, 0.01, loss_rate=0.5),))
        result = synthetic_result(dip=(8.0, 8.0))  # no visible dip at all
        rep = recovery_report(result, faults)
        assert rep.recovered
        assert rep.recovery_time_s == pytest.approx(0.0, abs=0.2)
        assert rep.goodput_lost_mbit == pytest.approx(0.0, abs=1.0)

    def test_single_flow_jain_is_nan(self):
        faults = FaultSchedule((Blackout(8.0, 2.0),))
        rep = recovery_report(synthetic_result(n_flows=1), faults)
        assert np.isnan(rep.jain_reconvergence_s)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigError):
            recovery_report(synthetic_result(), FaultSchedule())

    def test_threshold_validation(self):
        faults = FaultSchedule((Blackout(8.0, 2.0),))
        with pytest.raises(ConfigError):
            recovery_report(synthetic_result(), faults, threshold=0.0)
        with pytest.raises(ConfigError):
            recovery_report(synthetic_result(), faults, jain_threshold=1.5)

    def test_as_dict_round_trips_all_fields(self):
        faults = FaultSchedule((Blackout(8.0, 2.0),))
        doc = recovery_report(synthetic_result(), faults).as_dict()
        assert doc["recovered"] is True
        assert set(doc) >= {"fault_start_s", "fault_end_s",
                            "baseline_mbps", "recovery_time_s",
                            "jain_reconvergence_s",
                            "peak_rtt_overshoot_ms", "goodput_lost_mbit"}
