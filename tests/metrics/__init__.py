"""Test package."""
