"""Convergence-time and stability metrics on synthetic runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.multiflow import FlowLog, ScenarioResult
from repro.errors import ConfigError
from repro.metrics import (
    ARRIVAL,
    DEPARTURE,
    convergence_report,
    flow_events,
    mean_convergence_time,
    mean_stability,
)


def synthetic_result(converge_after_s: float = 2.0) -> ScenarioResult:
    """Two flows on 100 Mbps: flow 1 joins at 10 s; both reach 50/50 after
    ``converge_after_s`` with a linear transition."""
    grid = 0.1
    duration = 30.0
    times = np.arange(grid, duration, grid)

    def log(start, end, series):
        flow = FlowLog(cc_name="synthetic", start_s=start, end_s=end)
        for t, thr in zip(times, series):
            if start <= t < end:
                flow.times.append(float(t))
                flow.throughput_mbps.append(float(thr))
                flow.rtt_s.append(0.03)
                flow.loss_rate.append(0.0)
                flow.cwnd_pkts.append(100.0)
                flow.send_rate_mbps.append(float(thr))
        return flow

    join, tau = 10.0, converge_after_s
    thr0 = np.where(times < join, 100.0,
                    np.maximum(50.0, 100.0 - 50.0 * (times - join) / tau))
    thr1 = np.where(times < join, 0.0,
                    np.minimum(50.0, 50.0 * (times - join) / tau))
    return ScenarioResult(
        flows=[log(0.0, duration, thr0), log(join, duration, thr1)],
        duration_s=duration,
        bottleneck_mbps=100.0,
        base_rtt_s=0.03,
    )


class TestFlowEvents:
    def test_detects_arrival(self):
        events = flow_events(synthetic_result())
        kinds = [(e.kind, e.time_s) for e in events]
        assert (ARRIVAL, 10.0) in kinds

    def test_departure_detected(self):
        result = synthetic_result()
        result.flows[1].end_s = 20.0
        events = flow_events(result)
        assert any(e.kind == DEPARTURE and e.time_s == 20.0 for e in events)


class TestConvergence:
    def test_measures_known_convergence_time(self):
        reports = convergence_report(synthetic_result(converge_after_s=2.0))
        arrival = [r for r in reports if r.event.kind == ARRIVAL][0]
        assert arrival.converged
        # Linear transition reaches +/-10% of 50 at 1.8 s.
        assert arrival.convergence_time_s == pytest.approx(1.8, abs=0.4)

    def test_faster_transition_shorter_time(self):
        fast = convergence_report(synthetic_result(0.5))
        slow = convergence_report(synthetic_result(5.0))
        t_fast = mean_convergence_time(fast)
        t_slow = mean_convergence_time(slow)
        assert t_fast < t_slow

    def test_stability_zero_for_flat_series(self):
        reports = convergence_report(synthetic_result(1.0))
        assert mean_stability(reports) == pytest.approx(0.0, abs=0.5)

    def test_fair_share_recorded(self):
        reports = convergence_report(synthetic_result())
        arrival = [r for r in reports if r.event.kind == ARRIVAL][0]
        assert arrival.fair_share_mbps == pytest.approx(50.0)

    def test_unconverged_counts_penalty(self):
        # Never converges: flows stay at 90/10 after the join.
        result = synthetic_result(converge_after_s=1e9)
        reports = convergence_report(result)
        arrival = [r for r in reports if r.event.kind == ARRIVAL][0]
        assert not arrival.converged
        assert np.isnan(mean_convergence_time([arrival]))
        assert mean_convergence_time([arrival], penalty_s=30.0) == 30.0

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ConfigError):
            convergence_report(synthetic_result(), tolerance=0.0)

    def test_real_reference_run_converges(self, reference_three_flow_result):
        reports = convergence_report(reference_three_flow_result)
        assert any(r.converged for r in reports)
        t = mean_convergence_time(reports, penalty_s=30.0)
        assert t < 10.0


class TestRampTime:
    def test_measures_threshold_crossing(self):
        result = synthetic_result()
        # Aggregate is 100 Mbps from the first sample: immediate.
        from repro.metrics.convergence import ramp_time_s

        assert ramp_time_s(result, utilization=0.9) < 0.5

    def test_unreachable_threshold_is_inf(self):
        from repro.metrics.convergence import ramp_time_s

        result = synthetic_result()
        for flow in result.flows:
            flow.throughput_mbps = [t * 0.1 for t in flow.throughput_mbps]
        assert ramp_time_s(result, utilization=0.9) == float("inf")

    def test_rejects_bad_threshold(self):
        from repro.metrics.convergence import ramp_time_s

        with pytest.raises(ConfigError):
            ramp_time_s(synthetic_result(), utilization=0.0)


class TestJainConvergence:
    def test_converges_when_shares_equalise(self):
        from repro.metrics.convergence import jain_convergence_times

        times = jain_convergence_times(synthetic_result(2.0), threshold=0.9)
        # The arrival event reaches Jain >= 0.9 well before the strict
        # +-10% criterion (linear transition: jain 0.9 at ~35/65 split).
        assert any(t is not None and t < 2.0 for t in times)

    def test_never_fair_yields_none(self):
        from repro.metrics.convergence import (
            jain_convergence_times,
            mean_jain_convergence_time,
        )

        result = synthetic_result(converge_after_s=1e9)
        times = jain_convergence_times(result, threshold=0.95)
        arrival_times = [t for t in times if t is None]
        assert arrival_times  # the arrival event never reaches 0.95
        penalised = mean_jain_convergence_time(result, threshold=0.95,
                                               penalty_s=99.0)
        assert penalised > 1.0

    def test_threshold_validation(self):
        from repro.metrics.convergence import jain_convergence_times

        with pytest.raises(ConfigError):
            jain_convergence_times(synthetic_result(), threshold=0.0)

    def test_single_flow_event_counts_as_immediate(self):
        from repro.metrics.convergence import jain_convergence_times

        result = synthetic_result()
        # Remove flow 1 entirely: only departures/arrivals with < 2 active.
        result.flows[1].end_s = 10.05
        times = jain_convergence_times(result)
        assert all(t is None or t >= 0.0 for t in times)
