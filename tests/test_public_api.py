"""Top-level package API."""

from __future__ import annotations

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_run_scenario_from_top_level(self):
        scenario = repro.ScenarioConfig(
            link=repro.LinkConfig(bandwidth_mbps=50.0, rtt_ms=20.0),
            flows=(repro.FlowConfig(cc="cubic"),),
            duration_s=5.0,
        )
        result = repro.run_scenario(scenario)
        assert result.utilization() > 0.5

    def test_run_topology_from_top_level(self):
        from repro.netsim import parking_lot

        topo = parking_lot(n_fs1=1, n_fs2=1, cc="astraea-ref",
                           duration_s=8.0)
        result = repro.run_topology(topo)
        assert len(result.flows) == 2

    def test_error_hierarchy(self):
        assert issubclass(repro.ConfigError, repro.ReproError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.ModelError, repro.ReproError)
        assert issubclass(repro.ServiceError, repro.ReproError)
