"""Unit-conversion helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_mbps_pps_roundtrip_100mbps():
    pps = units.mbps_to_pps(100.0)
    assert pps == pytest.approx(100e6 / (1500 * 8))
    assert units.pps_to_mbps(pps) == pytest.approx(100.0)


@given(st.floats(min_value=1e-3, max_value=1e6,
                 allow_nan=False, allow_infinity=False))
def test_mbps_pps_roundtrip(mbps):
    assert units.pps_to_mbps(units.mbps_to_pps(mbps)) == pytest.approx(mbps)


def test_bdp_packets_canonical():
    # 100 Mbps x 30 ms = 3e5 bits in flight = 250 packets of 1500 B.
    assert units.bdp_packets(100.0, 0.030) == pytest.approx(250.0)


def test_bytes_packets_roundtrip():
    assert units.bytes_to_packets(units.packets_to_bytes(7.0)) == 7.0
    assert units.packets_to_bytes(1.0) == units.MSS_BYTES


def test_ms_helper():
    assert units.ms(30.0) == pytest.approx(0.030)


@given(st.floats(min_value=0.1, max_value=1e4),
       st.floats(min_value=1e-3, max_value=10.0))
def test_bdp_positive_and_linear(bw, rtt):
    bdp = units.bdp_packets(bw, rtt)
    assert bdp > 0
    assert units.bdp_packets(2 * bw, rtt) == pytest.approx(2 * bdp)
