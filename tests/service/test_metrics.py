"""Streaming latency histogram and metrics text exposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.inference import ServiceAccounting
from repro.service.metrics import LatencyHistogram, render_metrics


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.mean_s == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.summary()["p999_s"] == 0.0

    def test_single_sample_all_quantiles_near_it(self):
        h = LatencyHistogram()
        h.record(0.005)
        for q in (0.0, 0.5, 0.99, 0.999, 1.0):
            assert h.quantile(q) == pytest.approx(0.005, rel=0.15)
        assert h.max_s == 0.005
        assert h.mean_s == pytest.approx(0.005)

    def test_quantiles_ordered_and_bounded_by_max(self):
        rng = np.random.default_rng(3)
        h = LatencyHistogram()
        for v in rng.lognormal(mean=-5.0, sigma=1.0, size=2000):
            h.record(v)
        p50, p99, p999 = (h.quantile(0.5), h.quantile(0.99),
                          h.quantile(0.999))
        assert p50 <= p99 <= p999 <= h.max_s
        assert p50 > 0

    def test_quantile_accuracy_within_bucket_resolution(self):
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.001, 0.010, size=5000)
        h = LatencyHistogram()
        for v in samples:
            h.record(v)
        # Log buckets at 20/decade resolve ~12 %; allow 2 buckets.
        assert h.quantile(0.5) == pytest.approx(
            float(np.percentile(samples, 50)), rel=0.25)
        assert h.quantile(0.99) == pytest.approx(
            float(np.percentile(samples, 99)), rel=0.25)

    def test_out_of_range_samples_survive(self):
        h = LatencyHistogram()
        h.record(1e-9)     # below the first bucket
        h.record(1e4)      # above the last bucket
        assert h.count == 2
        assert h.quantile(1.0) == 1e4

    def test_non_finite_and_negative_ignored(self):
        h = LatencyHistogram()
        h.record(float("nan"))
        h.record(float("inf"))
        h.record(-1.0)
        assert h.count == 0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_memory_is_fixed(self):
        h = LatencyHistogram()
        size_before = h._counts.nbytes + h._edges.nbytes
        for i in range(10000):
            h.record(1e-5 * (1 + i % 997))
        assert h._counts.nbytes + h._edges.nbytes == size_before
        assert h.count == 10000

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=1e-7, max_value=50.0,
                              allow_nan=False), min_size=1, max_size=200))
    def test_quantile_monotone_in_q(self, values):
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)
        assert qs[-1] <= h.max_s


class TestRenderMetrics:
    def test_counters_and_quantiles_exposed(self):
        acc = ServiceAccounting()
        acc.requests = 7
        acc.record_batch(7)
        h = LatencyHistogram()
        h.record(0.004)
        text = render_metrics(acc, h, extra={"daemon_inflight": 3})
        assert "repro_service_requests 7\n" in text
        assert "repro_service_mean_batch_size 7\n" in text
        assert "repro_service_daemon_inflight 3\n" in text
        assert 'repro_service_latency_seconds{quantile="0.999"}' in text
        assert "repro_service_latency_seconds_count 1\n" in text

    def test_without_histogram(self):
        text = render_metrics(ServiceAccounting())
        assert "latency" not in text
        assert "repro_service_requests 0\n" in text

    def test_every_line_is_name_value(self):
        acc = ServiceAccounting()
        acc.cpu_time_s = 0.125
        h = LatencyHistogram()
        h.record(0.002)
        for line in render_metrics(acc, h).strip().splitlines():
            name, value = line.rsplit(" ", 1)
            float(value)  # parses
            assert name.startswith("repro_service_")
