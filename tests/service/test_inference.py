"""Batched inference service vs per-flow servers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import PolicyBundle, new_actor
from repro.errors import (
    DeadlineExceededError,
    InvalidStateError,
    ServiceError,
)
from repro.service import (
    BatchedInferenceService,
    PerFlowServers,
    analytic_fallback_action,
    synthetic_request_trace,
)


@pytest.fixture(scope="module")
def bundle():
    return PolicyBundle(actor=new_actor(seed=11))


class TestBatchedService:
    def test_flush_serves_everything_queued(self, bundle):
        svc = BatchedInferenceService(bundle)
        for i in range(5):
            svc.submit(i, np.zeros(bundle.actor.in_dim))
        out = svc.flush()
        assert set(out) == set(range(5))
        assert svc.accounting.forward_passes == 1
        assert svc.accounting.batch_sizes == [5]

    def test_actions_match_direct_inference(self, bundle):
        svc = BatchedInferenceService(bundle)
        rng = np.random.default_rng(0)
        states = rng.normal(size=(4, bundle.actor.in_dim))
        for i, s in enumerate(states):
            svc.submit(i, s)
        out = svc.flush()
        for i, s in enumerate(states):
            assert out[i] == pytest.approx(bundle.act(s), abs=1e-9)

    def test_windows_group_requests(self, bundle):
        svc = BatchedInferenceService(bundle, batch_window_s=0.005)
        dim = bundle.actor.in_dim
        arrivals = [(0.000, 0, np.zeros(dim)),
                    (0.001, 1, np.zeros(dim)),
                    (0.010, 0, np.zeros(dim))]
        out = svc.serve_trace(arrivals)
        # Two windows: {0,1} then {0}.
        assert svc.accounting.forward_passes == 2
        assert sorted(svc.accounting.batch_sizes) == [1, 2]
        assert len(out[0]) == 2
        assert len(out[1]) == 1

    def test_rejects_bad_state(self, bundle):
        svc = BatchedInferenceService(bundle)
        with pytest.raises(ServiceError):
            svc.submit(0, np.zeros(3))

    def test_rejects_bad_window(self, bundle):
        with pytest.raises(ServiceError):
            BatchedInferenceService(bundle, batch_window_s=0.0)


class TestPerFlowServers:
    def test_one_pass_per_request(self, bundle):
        servers = PerFlowServers(bundle, n_flows=3)
        dim = bundle.actor.in_dim
        for fid in range(3):
            servers.serve(fid, np.zeros(dim))
        assert servers.accounting.forward_passes == 3
        assert servers.accounting.batch_sizes == [1, 1, 1]

    def test_actions_match_bundle(self, bundle):
        servers = PerFlowServers(bundle, n_flows=2)
        s = np.random.default_rng(1).normal(size=bundle.actor.in_dim)
        assert servers.serve(0, s) == pytest.approx(bundle.act(s), abs=1e-9)

    def test_rejects_unknown_flow(self, bundle):
        servers = PerFlowServers(bundle, n_flows=2)
        with pytest.raises(ServiceError):
            servers.serve(5, np.zeros(bundle.actor.in_dim))

    def test_rejects_zero_flows(self, bundle):
        with pytest.raises(ServiceError):
            PerFlowServers(bundle, n_flows=0)


class TestScalability:
    def test_batching_reduces_forward_passes(self, bundle):
        """The architectural claim of §5.4: with many concurrent flows the
        batched service does far fewer forward passes."""
        trace = synthetic_request_trace(n_flows=50, duration_s=0.5,
                                        state_dim=bundle.actor.in_dim)
        batched = BatchedInferenceService(bundle)
        batched.serve_trace(trace)
        per_flow = PerFlowServers(bundle, n_flows=50)
        per_flow.serve_trace(trace)
        assert batched.accounting.requests == per_flow.accounting.requests
        assert batched.accounting.forward_passes < \
            per_flow.accounting.forward_passes / 4
        assert batched.accounting.mean_batch_size > 4

    def test_trace_request_count(self):
        trace = synthetic_request_trace(n_flows=10, duration_s=0.2,
                                        mtp_s=0.020)
        assert len(trace) == 10 * 10

    def test_trace_validation(self):
        with pytest.raises(ServiceError):
            synthetic_request_trace(0, 1.0)


class TestAccounting:
    def test_mean_batch_size_empty(self, bundle):
        svc = BatchedInferenceService(bundle)
        assert svc.accounting.mean_batch_size == 0.0

    def test_flush_empty_queue_is_noop(self, bundle):
        svc = BatchedInferenceService(bundle)
        assert svc.flush() == {}
        assert svc.accounting.forward_passes == 0

    def test_serve_trace_empty(self, bundle):
        assert BatchedInferenceService(bundle).serve_trace([]) == {}

    def test_requests_counted(self, bundle):
        svc = BatchedInferenceService(bundle)
        for i in range(7):
            svc.submit(i, np.zeros(bundle.actor.in_dim))
        assert svc.accounting.requests == 7


class TestHardening:
    def test_wrong_shape_raises_typed_even_with_fallback(self, bundle):
        svc = BatchedInferenceService(bundle, fallback="analytic")
        with pytest.raises(InvalidStateError):
            svc.submit(0, np.zeros(3))
        with pytest.raises(InvalidStateError):
            svc.submit(0, np.zeros((2, bundle.actor.in_dim)))
        assert svc.accounting.rejected == 2
        assert not svc.accounting.degraded

    def test_nan_without_fallback_raises(self, bundle):
        svc = BatchedInferenceService(bundle)
        state = np.zeros(bundle.actor.in_dim)
        state[5] = np.nan
        with pytest.raises(InvalidStateError):
            svc.submit(0, state)
        assert svc.accounting.rejected == 1

    def test_nan_with_fallback_served_analytically(self, bundle):
        svc = BatchedInferenceService(bundle, fallback="analytic")
        bad = np.full(bundle.actor.in_dim, np.nan)
        good = np.zeros(bundle.actor.in_dim)
        svc.submit(0, bad)
        svc.submit(1, good)
        out = svc.flush()
        assert np.isfinite(out[0]) and -1.0 < out[0] < 1.0
        assert out[1] == pytest.approx(bundle.act(good), abs=1e-9)
        assert svc.accounting.fallbacks == 1
        assert svc.accounting.degraded
        assert svc.accounting.batch_sizes == [1]  # only the healthy one

    def test_deadline_miss_routes_to_fallback(self, bundle):
        svc = BatchedInferenceService(bundle, deadline_s=0.010,
                                      fallback="analytic")
        svc.submit(0, np.zeros(bundle.actor.in_dim), arrival_s=0.0)
        svc.submit(1, np.zeros(bundle.actor.in_dim), arrival_s=0.0995)
        out = svc.flush(now_s=0.100)
        assert np.isfinite(out[0])
        assert svc.accounting.deadline_misses == 1
        assert svc.accounting.fallbacks == 1
        assert svc.accounting.degraded

    def test_deadline_miss_without_fallback_raises(self, bundle):
        svc = BatchedInferenceService(bundle, deadline_s=0.010)
        svc.submit(0, np.zeros(bundle.actor.in_dim), arrival_s=0.0)
        with pytest.raises(DeadlineExceededError):
            svc.flush(now_s=1.0)
        assert svc.accounting.deadline_misses == 1
        assert svc.accounting.degraded

    def test_no_deadline_means_no_misses(self, bundle):
        svc = BatchedInferenceService(bundle)
        svc.submit(0, np.zeros(bundle.actor.in_dim), arrival_s=0.0)
        out = svc.flush(now_s=99.0)
        assert 0 in out
        assert svc.accounting.deadline_misses == 0

    def test_custom_callable_fallback(self, bundle):
        svc = BatchedInferenceService(bundle, fallback=lambda s: 0.123)
        bad = np.full(bundle.actor.in_dim, np.inf)
        svc.submit(7, bad)
        assert svc.flush() == {7: 0.123}

    def test_constructor_validation(self, bundle):
        with pytest.raises(ServiceError):
            BatchedInferenceService(bundle, deadline_s=0.0)
        with pytest.raises(ServiceError):
            BatchedInferenceService(bundle, fallback="magic")

    def test_per_flow_rejects_nonfinite_and_wrong_shape(self, bundle):
        servers = PerFlowServers(bundle, n_flows=1)
        state = np.zeros(bundle.actor.in_dim)
        state[0] = np.inf
        with pytest.raises(InvalidStateError):
            servers.serve(0, state)
        with pytest.raises(InvalidStateError):
            servers.serve(0, np.zeros(3))
        assert servers.accounting.rejected == 2

    def test_serve_trace_with_deadline_and_fallback_stays_healthy(
            self, bundle):
        # Requests are served at their window end, so a deadline longer
        # than the batching window never fires.
        svc = BatchedInferenceService(bundle, batch_window_s=0.005,
                                      deadline_s=0.050, fallback="analytic")
        trace = synthetic_request_trace(n_flows=5, duration_s=0.2,
                                        state_dim=bundle.actor.in_dim)
        svc.serve_trace(trace)
        assert svc.accounting.deadline_misses == 0
        assert not svc.accounting.degraded


FINITE_OR_NOT = st.floats(allow_nan=True, allow_infinity=True,
                          width=64)


class TestHardeningProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(FINITE_OR_NOT, min_size=40, max_size=40))
    def test_submit_with_fallback_never_raises(self, bundle, values):
        svc = BatchedInferenceService(bundle, fallback="analytic")
        svc.submit(0, np.array(values))
        out = svc.flush()
        assert set(out) == {0}
        assert np.isfinite(out[0])
        assert -1.0 < out[0] < 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(FINITE_OR_NOT, min_size=40, max_size=40))
    def test_analytic_fallback_always_bounded(self, values):
        a = analytic_fallback_action(np.array(values))
        assert np.isfinite(a)
        assert -1.0 < a < 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=200).filter(lambda n: n != 40))
    def test_wrong_dim_always_typed_error(self, bundle, dim):
        svc = BatchedInferenceService(bundle, fallback="analytic")
        with pytest.raises(InvalidStateError):
            svc.submit(0, np.zeros(dim))


class TestNonFiniteActorOutput:
    """A finite-but-huge state passes input validation yet overflows the
    actor's matmul into inf/NaN.  The service must degrade gracefully, not
    return a non-finite action (this was a real, randomly-surfacing
    failure in the fallback property test before the output guard)."""

    HUGE = 1e308

    def huge_state(self, bundle):
        return np.full(bundle.actor.in_dim, self.HUGE)

    def test_flush_routes_overflow_to_fallback(self, bundle):
        svc = BatchedInferenceService(bundle, fallback="analytic")
        svc.submit(0, self.huge_state(bundle))
        svc.submit(1, np.zeros(bundle.actor.in_dim))
        out = svc.flush()
        assert np.isfinite(out[0])
        assert out[1] == pytest.approx(
            bundle.act(np.zeros(bundle.actor.in_dim)), abs=1e-9)
        assert svc.accounting.fallbacks == 1
        assert svc.accounting.degraded

    def test_flush_without_fallback_returns_neutral(self, bundle):
        svc = BatchedInferenceService(bundle)
        svc.submit(0, self.huge_state(bundle))
        out = svc.flush()
        assert out[0] == 0.0
        assert svc.accounting.degraded

    def test_per_flow_serve_returns_neutral_and_degrades(self, bundle):
        servers = PerFlowServers(bundle, n_flows=1)
        action = servers.serve(0, self.huge_state(bundle))
        assert action == 0.0
        assert servers.accounting.degraded


class TestDeadlineMissWindowIntegrity:
    """Regression: a deadline miss with no fallback used to abort the
    whole flush, silently discarding every other queued request.  The
    healthy requests of the window must be served first and the raised
    DeadlineExceededError must carry both halves of the ledger."""

    def test_healthy_requests_survive_a_miss(self, bundle):
        svc = BatchedInferenceService(bundle, deadline_s=0.010)
        dim = bundle.actor.in_dim
        rng = np.random.default_rng(2)
        states = {1: rng.normal(size=dim), 2: rng.normal(size=dim)}
        svc.submit(0, np.zeros(dim), arrival_s=0.0)        # overdue
        svc.submit(1, states[1], arrival_s=0.0995)
        svc.submit(2, states[2], arrival_s=0.0998)
        with pytest.raises(DeadlineExceededError) as exc_info:
            svc.flush(now_s=0.100)
        exc = exc_info.value
        assert exc.missed == [0]
        assert set(exc.served) == {1, 2}
        for rid, state in states.items():
            assert exc.served[rid] == pytest.approx(bundle.act(state),
                                                    abs=1e-9)
        assert svc.accounting.deadline_misses == 1
        assert svc.accounting.forward_passes == 1
        assert svc.accounting.degraded

    def test_all_misses_listed_and_counted(self, bundle):
        svc = BatchedInferenceService(bundle, deadline_s=0.010)
        dim = bundle.actor.in_dim
        svc.submit(0, np.zeros(dim), arrival_s=0.0)
        svc.submit(1, np.zeros(dim), arrival_s=0.010)
        svc.submit(2, np.zeros(dim), arrival_s=0.0995)
        with pytest.raises(DeadlineExceededError) as exc_info:
            svc.flush(now_s=0.100)
        assert exc_info.value.missed == [0, 1]
        assert set(exc_info.value.served) == {2}
        assert svc.accounting.deadline_misses == 2

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=12))
    def test_no_request_ever_vanishes(self, bundle, overdue_flags):
        """Every submitted id lands in exactly one of served/missed."""
        svc = BatchedInferenceService(bundle, deadline_s=0.010)
        dim = bundle.actor.in_dim
        for rid, overdue in enumerate(overdue_flags):
            svc.submit(rid, np.zeros(dim),
                       arrival_s=0.0 if overdue else 0.0995)
        if any(overdue_flags):
            with pytest.raises(DeadlineExceededError) as exc_info:
                svc.flush(now_s=0.100)
            served = set(exc_info.value.served)
            missed = set(exc_info.value.missed)
        else:
            served, missed = set(svc.flush(now_s=0.100)), set()
        assert served | missed == set(range(len(overdue_flags)))
        assert served & missed == set()


class TestNeutralAnswerParity:
    """Both backends answer actor overflow (finite state, non-finite
    action, no fallback) with 0.0 — and both must account for it the
    same way: neutral_answers bumped, degraded set, no fallback
    counted."""

    HUGE = 1e308

    def test_backends_account_identically(self, bundle):
        state = np.full(bundle.actor.in_dim, self.HUGE)
        batched = BatchedInferenceService(bundle)
        batched.submit(0, state)
        out = batched.flush()
        per_flow = PerFlowServers(bundle, n_flows=1)
        action = per_flow.serve(0, state)

        assert out[0] == 0.0 and action == 0.0
        for acc in (batched.accounting, per_flow.accounting):
            assert acc.neutral_answers == 1
            assert acc.fallbacks == 0
            assert acc.degraded
        keys = ("requests", "neutral_answers", "fallbacks", "rejected",
                "deadline_misses", "degraded")
        b, p = batched.accounting.counters(), per_flow.accounting.counters()
        assert {k: b[k] for k in keys} == {k: p[k] for k in keys}

    def test_healthy_rows_of_the_same_batch_unaffected(self, bundle):
        svc = BatchedInferenceService(bundle)
        good = np.zeros(bundle.actor.in_dim)
        svc.submit(0, np.full(bundle.actor.in_dim, self.HUGE))
        svc.submit(1, good)
        out = svc.flush()
        assert out[0] == 0.0
        assert out[1] == pytest.approx(bundle.act(good), abs=1e-9)
        assert svc.accounting.neutral_answers == 1


class TestBoundedBatchAccounting:
    """Regression: batch_sizes was an unbounded Python list — a
    long-lived daemon leaked memory linearly in forward passes.  The
    aggregates are now streaming and the materialised view is a
    fixed-size ring."""

    def test_view_bounded_aggregates_complete(self):
        from repro.service.inference import RECENT_BATCHES, ServiceAccounting

        acc = ServiceAccounting()
        n = RECENT_BATCHES + 137
        for i in range(1, n + 1):
            acc.record_batch(i)
        assert len(acc.batch_sizes) == RECENT_BATCHES
        # The view holds the most recent entries, oldest first.
        assert acc.batch_sizes == list(range(n - RECENT_BATCHES + 1, n + 1))
        # Aggregates still cover the *full* history.
        assert acc.batch_count == n
        assert acc.batch_sum == n * (n + 1) // 2
        assert acc.batch_max == n
        assert acc.mean_batch_size == pytest.approx((n + 1) / 2)

    def test_ring_memory_is_fixed(self):
        from repro.service.inference import ServiceAccounting

        acc = ServiceAccounting()
        nbytes = acc._recent.nbytes
        for _ in range(3000):
            acc.record_batch(4)
        assert acc._recent.nbytes == nbytes

    def test_partial_fill_matches_history(self):
        from repro.service.inference import ServiceAccounting

        acc = ServiceAccounting()
        sizes = [5, 1, 2, 9]
        for s in sizes:
            acc.record_batch(s)
        assert acc.batch_sizes == sizes
        assert acc.mean_batch_size == pytest.approx(np.mean(sizes))
        assert acc.batch_max == 9


class TestServeTraceWindowBoundaries:
    """Window semantics of serve_trace: a request arriving exactly at
    window_end opens the next window, and late arrivals re-anchor the
    window to their own arrival time."""

    def test_arrival_exactly_at_window_end_opens_new_window(self, bundle):
        svc = BatchedInferenceService(bundle, batch_window_s=0.005)
        dim = bundle.actor.in_dim
        out = svc.serve_trace([(0.000, 0, np.zeros(dim)),
                               (0.005, 1, np.zeros(dim))])
        assert svc.accounting.forward_passes == 2
        assert svc.accounting.batch_sizes == [1, 1]
        assert len(out[0]) == len(out[1]) == 1

    def test_late_arrival_reanchors_window(self, bundle):
        svc = BatchedInferenceService(bundle, batch_window_s=0.005)
        dim = bundle.actor.in_dim
        # Window 1 = [0.0, 0.005).  The arrival at 0.0121 flushes it and
        # re-anchors window 2 to [0.0121, 0.0171), which the arrival at
        # 0.016 still falls inside — no empty intermediate windows.
        svc.serve_trace([(0.0000, 0, np.zeros(dim)),
                         (0.0121, 1, np.zeros(dim)),
                         (0.0160, 2, np.zeros(dim))])
        assert svc.accounting.forward_passes == 2
        assert sorted(svc.accounting.batch_sizes) == [1, 2]

    def test_age_equal_to_deadline_is_not_a_miss(self, bundle):
        # Requests are flushed at window_end, so the oldest request of a
        # window has age exactly batch_window_s; a deadline equal to the
        # window must not fire (strict > comparison).
        svc = BatchedInferenceService(bundle, batch_window_s=0.005,
                                      deadline_s=0.005)
        dim = bundle.actor.in_dim
        out = svc.serve_trace([(0.0, 0, np.zeros(dim))])
        assert len(out[0]) == 1
        assert svc.accounting.deadline_misses == 0
        assert not svc.accounting.degraded

    def test_deadline_shorter_than_window_fires_each_window(self, bundle):
        svc = BatchedInferenceService(bundle, batch_window_s=0.005,
                                      deadline_s=0.004, fallback="analytic")
        dim = bundle.actor.in_dim
        # Each request is alone in its window and waits the full 5 ms
        # before its flush, so every one ages past the 4 ms deadline.
        out = svc.serve_trace([(0.000, 0, np.zeros(dim)),
                               (0.006, 1, np.zeros(dim))])
        assert svc.accounting.deadline_misses == 2
        assert svc.accounting.fallbacks == 2
        assert all(np.isfinite(v) for acts in out.values() for v in acts)
