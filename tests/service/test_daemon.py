"""Asyncio serving daemon: framing, batching, admission, drain."""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest

from repro.core.policy import PolicyBundle, new_actor
from repro.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    InvalidStateError,
    ProtocolError,
    ServiceError,
)
from repro.service import (
    BatchedInferenceService,
    InferenceDaemon,
    ServiceClient,
    decode_body,
    encode_frame,
    read_frame,
    shard_for_flow,
)

WINDOW = 0.002


@pytest.fixture(scope="module")
def bundle():
    return PolicyBundle(actor=new_actor(seed=11))


def run(coro):
    return asyncio.run(coro)


def make_daemon(bundle, **kwargs):
    service_kwargs = {"batch_window_s": WINDOW}
    for key in ("deadline_s", "fallback"):
        if key in kwargs:
            service_kwargs[key] = kwargs.pop(key)
    service = BatchedInferenceService(bundle, **service_kwargs)
    return InferenceDaemon(service, **kwargs)


class daemon_and_client:
    """Async context: daemon on an ephemeral port + connected client."""

    def __init__(self, bundle, conns_per_shard=2, **kwargs):
        self.daemon = make_daemon(bundle, **kwargs)
        self._conns = conns_per_shard

    async def __aenter__(self):
        port = await self.daemon.start("127.0.0.1", 0)
        self.client = ServiceClient([("127.0.0.1", port)],
                                    conns_per_shard=self._conns)
        return self.daemon, self.client

    async def __aexit__(self, *exc):
        await self.client.aclose()
        self.daemon.request_shutdown()
        await self.daemon.drain()
        return False


class TestFraming:
    def test_round_trip(self):
        body = {"op": "act", "id": 3, "state": [0.0, 1.5]}
        frame = encode_frame(body)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == body

    def test_decode_garbage_raises_typed(self):
        with pytest.raises(ProtocolError):
            decode_body(b"\xff\xfenot json")
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2, 3]")  # not an object

    def test_oversize_frame_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"state": [0.0] * (1 << 19)})

    def test_read_frame_concatenated_stream(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"a": 1}) +
                             encode_frame({"b": 2}))
            reader.feed_eof()
            first = decode_body(await read_frame(reader))
            second = decode_body(await read_frame(reader))
            third = await read_frame(reader)
            return first, second, third

        first, second, third = run(scenario())
        assert (first, second, third) == ({"a": 1}, {"b": 2}, None)

    def test_read_frame_bad_length_prefix(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", 1 << 30) + b"junk")
            with pytest.raises(ProtocolError):
                await read_frame(reader)

        run(scenario())


class TestSharding:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 3, 8):
            shards = [shard_for_flow(fid, n) for fid in range(1000)]
            assert shards == [shard_for_flow(fid, n) for fid in range(1000)]
            assert all(0 <= s < n for s in shards)

    def test_covers_all_shards(self):
        assert set(shard_for_flow(fid, 4) for fid in range(1000)) == \
            {0, 1, 2, 3}

    def test_rejects_zero_shards(self):
        with pytest.raises(ServiceError):
            shard_for_flow(1, 0)


class TestActRoundTrip:
    def test_action_matches_bundle(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (_, client):
                state = np.full(bundle.actor.in_dim, 0.25)
                return await client.act(0, state, timeout=5)

        action = run(scenario())
        assert action == pytest.approx(
            bundle.act(np.full(bundle.actor.in_dim, 0.25)), abs=1e-9)

    def test_concurrent_flows_batched(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (daemon, client):
                zeros = np.zeros(bundle.actor.in_dim)
                outs = await asyncio.gather(*[
                    client.act(fid, zeros, timeout=5)
                    for fid in range(24)])
                return outs, daemon.service.accounting

        outs, accounting = run(scenario())
        assert len(outs) == 24
        assert accounting.requests == 24
        # Many requests per batching window -> far fewer passes.
        assert accounting.forward_passes < 24
        assert accounting.batch_max > 1

    def test_concurrent_clients(self, bundle):
        async def scenario():
            daemon = make_daemon(bundle)
            port = await daemon.start("127.0.0.1", 0)
            clients = [ServiceClient([("127.0.0.1", port)])
                       for _ in range(3)]
            zeros = np.zeros(bundle.actor.in_dim)
            outs = await asyncio.gather(*[
                client.act(fid, zeros, timeout=5)
                for client in clients for fid in range(8)])
            stats = await clients[0].stats(timeout=5)
            for client in clients:
                await client.aclose()
            daemon.request_shutdown()
            await daemon.drain()
            return outs, stats, daemon

        outs, stats, daemon = run(scenario())
        assert len(outs) == 24
        assert stats["counters"]["requests"] == 24
        assert daemon.counters["connections"] >= 3
        assert stats["latency"]["count"] == 24

    def test_latency_histogram_records_window_wait(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (daemon, client):
                await client.act(0, np.zeros(bundle.actor.in_dim),
                                 timeout=5)
                return daemon.latency.summary()

        summary = run(scenario())
        assert summary["count"] == 1
        # Service latency includes the batching-window wait.
        assert summary["p50_s"] >= WINDOW * 0.5


class TestProtocolHardening:
    def test_malformed_body_rejected_connection_survives(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (daemon, _):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", daemon.port)
                garbage = b"{not json!"
                writer.write(struct.pack(">I", len(garbage)) + garbage)
                await writer.drain()
                reject = decode_body(await read_frame(reader))
                # Same connection must still serve valid frames.
                writer.write(encode_frame({"op": "ping", "id": 9}))
                await writer.drain()
                pong = decode_body(await read_frame(reader))
                writer.close()
                await writer.wait_closed()
                return reject, pong, daemon.counters

        reject, pong, counters = run(scenario())
        assert reject["ok"] is False
        assert reject["error"] == "ProtocolError"
        assert pong == {"id": 9, "ok": True, "op": "ping"}
        assert counters["protocol_errors"] == 1

    def test_bad_length_prefix_closes_only_that_connection(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (daemon, client):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", daemon.port)
                writer.write(struct.pack(">I", 1 << 31) + b"x" * 8)
                await writer.drain()
                reject = decode_body(await read_frame(reader))
                eof = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
                # The daemon itself is unharmed.
                action = await client.act(
                    0, np.zeros(bundle.actor.in_dim), timeout=5)
                return reject, eof, action

        reject, eof, action = run(scenario())
        assert reject["error"] == "ProtocolError"
        assert eof is None
        assert np.isfinite(action)

    def test_unknown_op_and_missing_state_rejected(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (daemon, _):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", daemon.port)
                writer.write(encode_frame({"op": "explode", "id": 1}))
                writer.write(encode_frame({"op": "act", "id": 2}))
                await writer.drain()
                first = decode_body(await read_frame(reader))
                second = decode_body(await read_frame(reader))
                writer.close()
                await writer.wait_closed()
                return first, second

        first, second = run(scenario())
        assert first["error"] == "ProtocolError" and first["id"] == 1
        assert second["error"] == "ProtocolError" and second["id"] == 2

    def test_wrong_dim_state_typed_reject(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (_, client):
                with pytest.raises(InvalidStateError):
                    await client.act(0, [1.0, 2.0, 3.0], timeout=5)

        run(scenario())

    def test_nonfinite_state_without_fallback_typed_reject(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (daemon, client):
                bad = [float("nan")] * bundle.actor.in_dim
                with pytest.raises(InvalidStateError):
                    await client.act(0, bad, timeout=5)
                # Healthy traffic continues.
                ok = await client.act(1, np.zeros(bundle.actor.in_dim),
                                      timeout=5)
                return ok, daemon.service.accounting.rejected

        ok, rejected = run(scenario())
        assert np.isfinite(ok)
        assert rejected == 1


class TestAdmissionControl:
    def test_ceiling_rejects_typed_and_server_survives(self, bundle):
        async def scenario():
            async with daemon_and_client(
                    bundle, max_inflight=2) as (daemon, client):
                zeros = np.zeros(bundle.actor.in_dim)
                results = await asyncio.gather(
                    *[client.act(fid, zeros, timeout=5)
                      for fid in range(12)],
                    return_exceptions=True)
                follow_up = await client.act(99, zeros, timeout=5)
                return results, follow_up, daemon.counters

        results, follow_up, counters = run(scenario())
        answered = [r for r in results if isinstance(r, float)]
        rejected = [r for r in results
                    if isinstance(r, AdmissionRejectedError)]
        assert len(answered) + len(rejected) == 12
        assert rejected, "the ceiling must actually reject something"
        assert counters["admission_rejected"] == len(rejected)
        assert np.isfinite(follow_up)

    def test_rejects_invalid_ceiling(self, bundle):
        service = BatchedInferenceService(bundle)
        with pytest.raises(ServiceError):
            InferenceDaemon(service, max_inflight=0)


class TestDeadlines:
    def test_deadline_miss_without_fallback_is_per_request(self, bundle):
        """The daemon surfaces a deadline miss as a typed error on the
        affected request(s) — the fixed flush semantics — instead of
        crashing the flush loop or dropping the window."""

        async def scenario():
            async with daemon_and_client(
                    bundle, deadline_s=1e-9) as (daemon, client):
                zeros = np.zeros(bundle.actor.in_dim)
                results = await asyncio.gather(
                    *[client.act(fid, zeros, timeout=5)
                      for fid in range(4)],
                    return_exceptions=True)
                # Daemon still alive and accounting consistent.
                stats = await client.stats(timeout=5)
                return results, stats

        results, stats = run(scenario())
        assert all(isinstance(r, DeadlineExceededError) for r in results)
        assert stats["counters"]["deadline_misses"] == 4
        assert stats["counters"]["degraded"] == 1

    def test_deadline_with_fallback_answers_analytically(self, bundle):
        async def scenario():
            async with daemon_and_client(
                    bundle, deadline_s=1e-9,
                    fallback="analytic") as (daemon, client):
                action = await client.act(
                    0, np.zeros(bundle.actor.in_dim), timeout=5)
                return action, daemon.service.accounting

        action, accounting = run(scenario())
        assert np.isfinite(action) and -1.0 < action < 1.0
        assert accounting.fallbacks == 1
        assert accounting.deadline_misses == 1


class TestDrain:
    def test_drain_answers_pending_then_rejects(self, bundle):
        async def scenario():
            daemon = make_daemon(bundle)
            port = await daemon.start("127.0.0.1", 0)
            client = ServiceClient([("127.0.0.1", port)])
            zeros = np.zeros(bundle.actor.in_dim)
            pending = [asyncio.ensure_future(
                client.act(fid, zeros, timeout=5)) for fid in range(6)]
            while daemon.service.accounting.requests < 6:
                await asyncio.sleep(0.0005)   # until all 6 are queued
            await daemon.drain()
            answers = await asyncio.gather(*pending)
            # Post-drain: existing connections get a typed reject...
            with pytest.raises(AdmissionRejectedError):
                await client.act(7, zeros, timeout=5)
            # ...and new connections are refused outright.
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)
            await client.aclose()
            return answers, daemon.service.accounting, daemon.counters

        answers, accounting, counters = run(scenario())
        assert len(answers) == 6
        assert all(np.isfinite(a) for a in answers)
        assert accounting.requests == 6
        assert counters["drain_rejected"] == 1

    def test_drain_idempotent_on_idle_daemon(self, bundle):
        async def scenario():
            daemon = make_daemon(bundle)
            await daemon.start("127.0.0.1", 0)
            await daemon.drain()
            await daemon.drain()

        run(scenario())


class TestStatsVerb:
    def test_stats_surface(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (_, client):
                await client.act(0, np.zeros(bundle.actor.in_dim),
                                 timeout=5)
                assert (await client.ping(timeout=5))["ok"] is True
                return await client.stats(timeout=5)

        stats = run(scenario())
        assert stats["in_dim"] == bundle.actor.in_dim
        assert stats["window_s"] == WINDOW
        assert stats["shard"] == 0 and stats["shards"] == 1
        counters = stats["counters"]
        assert counters["requests"] == 1
        assert counters["forward_passes"] == 1
        assert counters["daemon_connections"] >= 1
        assert counters["daemon_inflight"] == 0
        assert stats["latency"]["count"] == 1
        assert "repro_service_requests 1" in stats["metrics"]
        assert 'quantile="0.99"' in stats["metrics"]

    def test_client_validation(self):
        with pytest.raises(ServiceError):
            ServiceClient([])
        with pytest.raises(ServiceError):
            ServiceClient([("127.0.0.1", 1)], conns_per_shard=0)


# -- shard supervision ------------------------------------------------


def _exit_child(code: int) -> None:
    import os

    os._exit(code)


def _crashy_child(restarts: int) -> None:
    """Crash the first two incarnations, then serve until terminated."""
    import os
    import time

    if restarts < 2:
        os._exit(5)
    time.sleep(60)


class TestBackoffDelay:
    def test_zero_and_doubling_and_cap(self):
        from repro.service import backoff_delay_s

        assert backoff_delay_s(0) == 0.0
        assert backoff_delay_s(1, base_s=0.5, cap_s=30.0) == 0.5
        assert backoff_delay_s(2, base_s=0.5, cap_s=30.0) == 1.0
        assert backoff_delay_s(3, base_s=0.5, cap_s=30.0) == 2.0
        assert backoff_delay_s(10, base_s=0.5, cap_s=30.0) == 30.0
        # huge counts must not overflow
        assert backoff_delay_s(10_000, base_s=0.5, cap_s=30.0) == 30.0


class TestShardSupervisor:
    def _ctx(self):
        import multiprocessing

        return multiprocessing.get_context("spawn")

    def test_restarts_crashed_shard_and_counts(self):
        import threading
        import time

        from repro.service import ShardSupervisor

        ctx = self._ctx()

        def spawn(index, restarts):
            child = ctx.Process(target=_crashy_child, args=(restarts,))
            child.start()
            return child

        lines = []
        sup = ShardSupervisor(1, spawn, max_restarts=5,
                              backoff_base_s=0.02, backoff_cap_s=0.1,
                              announce=lines.append)

        def stop_when_stable():
            # after the second respawn the child sleeps; shut down then
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and sup.restarts != [2]:
                time.sleep(0.02)
            time.sleep(0.2)
            sup.request_shutdown()

        stopper = threading.Thread(target=stop_when_stable, daemon=True)
        stopper.start()
        codes = sup.run()
        stopper.join(timeout=15.0)
        assert sup.restarts == [2]
        assert codes == [-15]          # SIGTERM of the healthy survivor
        assert sum("SHARD-RESTART" in ln for ln in lines) == 2

    def test_gives_up_after_max_restarts(self):
        from repro.service import ShardSupervisor

        ctx = self._ctx()
        spawned = []

        def spawn(index, restarts):
            spawned.append(restarts)
            child = ctx.Process(target=_exit_child, args=(7,))
            child.start()
            return child

        lines = []
        sup = ShardSupervisor(1, spawn, max_restarts=2,
                              backoff_base_s=0.01, backoff_cap_s=0.02,
                              announce=lines.append)
        codes = sup.run()
        assert codes == [7]
        assert sup.restarts == [2]
        assert spawned == [0, 1, 2]    # restart count rides into spawn
        assert any("SHARD-ABANDONED" in ln for ln in lines)

    def test_validation(self):
        from repro.service import ShardSupervisor

        with pytest.raises(ServiceError):
            ShardSupervisor(0, lambda i, r: None)
        with pytest.raises(ServiceError):
            ShardSupervisor(1, lambda i, r: None, max_restarts=-1)


class TestStatsRestartCounter:
    def test_shard_restarts_surfaces_in_stats(self, bundle):
        async def scenario():
            daemon = make_daemon(bundle, shard_restarts=3)
            port = await daemon.start("127.0.0.1", 0)
            client = ServiceClient([("127.0.0.1", port)])
            try:
                stats = await client.stats(timeout=5)
            finally:
                await client.aclose()
                daemon.request_shutdown()
                await daemon.drain()
            return stats

        stats = run(scenario())
        assert stats["counters"]["daemon_shard_restarts"] == 3
        assert "repro_service_daemon_shard_restarts 3" in stats["metrics"]


class TestClientResilience:
    def test_connect_retry_exhaustion_typed(self):
        from repro.errors import ServiceConnectError

        async def scenario():
            client = ServiceClient([("127.0.0.1", 1)], connect_attempts=3,
                                   connect_backoff_s=0.01,
                                   connect_backoff_cap_s=0.02)
            with pytest.raises(ServiceConnectError) as err:
                await client.ping()
            assert err.value.attempts == 3
            assert isinstance(err.value.__cause__, OSError)

        run(scenario())

    def test_connect_retry_eventually_succeeds(self, bundle):
        async def scenario():
            daemon = make_daemon(bundle)
            client = None
            try:
                # the daemon starts *after* a short delay; the client's
                # retry loop must absorb the gap
                import socket as socket_mod

                probe = socket_mod.socket()
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]
                probe.close()

                async def start_late():
                    await asyncio.sleep(0.15)
                    await daemon.start("127.0.0.1", port)

                task = asyncio.create_task(start_late())
                client = ServiceClient([("127.0.0.1", port)],
                                       connect_attempts=10,
                                       connect_backoff_s=0.05,
                                       connect_backoff_cap_s=0.2)
                body = await client.ping(timeout=5)
                assert body["ok"] is True
                await task
            finally:
                if client is not None:
                    await client.aclose()
                daemon.request_shutdown()
                await daemon.drain()

        run(scenario())

    def test_request_timeout_typed_instead_of_hang(self):
        from repro.errors import ServiceTimeoutError

        async def scenario():
            async def mute(reader, writer):
                await reader.read(-1)

            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ServiceClient([("127.0.0.1", port)],
                                   request_timeout_s=0.1)
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            with pytest.raises(ServiceTimeoutError):
                await client.ping()
            assert loop.time() - t0 < 5.0
            await client.aclose()
            server.close()
            await server.wait_closed()

        run(scenario())

    def test_explicit_timeout_overrides_default(self, bundle):
        async def scenario():
            async with daemon_and_client(bundle) as (_, client):
                # a generous explicit timeout on a healthy daemon works
                body = await client.ping(timeout=10.0)
                assert body["ok"] is True

        run(scenario())
