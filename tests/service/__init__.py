"""Test package."""
