"""Configuration dataclasses and the published constants."""

from __future__ import annotations

import pytest

from repro import config
from repro.errors import ConfigError


class TestPaperConstants:
    """Table 3 and Table 4 values must match the paper verbatim."""

    def test_table4_hyperparameters(self):
        assert config.LEARNING_RATE == 1e-3
        assert config.HISTORY_LENGTH == 5
        assert config.GAMMA == 0.98
        assert config.BATCH_SIZE == 192
        assert config.MODEL_UPDATE_INTERVAL_S == 5.0
        assert config.MODEL_UPDATE_STEPS == 20
        assert config.ACTION_ALPHA == 0.025
        assert (config.REWARD_C0, config.REWARD_C1, config.REWARD_C2,
                config.REWARD_C3, config.REWARD_C4) == (0.1, 0.02, 1.0,
                                                        0.02, 0.01)
        assert config.MTP_S == 0.030

    def test_table3_environment_ranges(self):
        assert config.TRAIN_BANDWIDTH_MBPS == (40.0, 160.0)
        assert config.TRAIN_RTT_MS == (10.0, 140.0)
        assert config.TRAIN_BUFFER_BDP == (0.1, 16.0)
        assert config.TRAIN_FLOW_COUNT == (2, 5)

    def test_network_architecture(self):
        assert config.HIDDEN_LAYERS == (256, 128, 64)


class TestLinkConfig:
    def test_defaults(self):
        link = config.LinkConfig()
        assert link.rtt_s == pytest.approx(0.030)
        assert link.one_way_delay_s == pytest.approx(0.015)
        assert link.buffer_size_packets == pytest.approx(250.0)

    def test_buffer_packets_override(self):
        link = config.LinkConfig(buffer_packets=42.0)
        assert link.buffer_size_packets == 42.0

    @pytest.mark.parametrize("kwargs", [
        {"bandwidth_mbps": 0.0},
        {"bandwidth_mbps": -1.0},
        {"rtt_ms": 0.0},
        {"random_loss": 1.0},
        {"random_loss": -0.1},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            config.LinkConfig(**kwargs)


class TestFlowConfig:
    def test_end_time(self):
        assert config.FlowConfig(start_s=5.0, duration_s=10.0).end_s() == 15.0
        assert config.FlowConfig(start_s=5.0).end_s() == float("inf")

    @pytest.mark.parametrize("kwargs", [
        {"start_s": -1.0},
        {"duration_s": 0.0},
        {"extra_rtt_ms": -5.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            config.FlowConfig(**kwargs)


class TestScenarioConfig:
    def test_requires_flows(self):
        with pytest.raises(ConfigError):
            config.ScenarioConfig(flows=())

    def test_tick_must_not_exceed_mtp(self):
        with pytest.raises(ConfigError):
            config.ScenarioConfig(flows=(config.FlowConfig(),),
                                  tick_s=0.1, mtp_s=0.03)

    def test_valid(self):
        sc = config.ScenarioConfig(flows=(config.FlowConfig(),))
        assert sc.duration_s > 0


class TestRewardAndTraining:
    def test_reward_defaults_match_table4(self):
        rc = config.RewardConfig()
        assert (rc.c_thr, rc.c_lat, rc.c_loss, rc.c_fair, rc.c_stab) == \
            (0.1, 0.02, 1.0, 0.02, 0.01)
        assert rc.bound == 0.1

    def test_reward_rejects_bad_bound(self):
        with pytest.raises(ConfigError):
            config.RewardConfig(bound=0.0)

    def test_training_rejects_bad_gamma(self):
        with pytest.raises(ConfigError):
            config.TrainingConfig(gamma=1.5)

    def test_replace_helper(self):
        cfg = config.TrainingConfig()
        cfg2 = config.replace(cfg, episodes=7)
        assert cfg2.episodes == 7
        assert cfg.episodes != 7 or cfg.episodes == cfg2.episodes
