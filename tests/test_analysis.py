"""Terminal analysis rendering."""

from __future__ import annotations

import pytest

from repro.analysis import flow_timelines, sparkline, text_report
from repro.errors import ConfigError


class TestSparkline:
    def test_fixed_width(self):
        assert len(sparkline([1, 2, 3], width=40)) == 40

    def test_monotone_series_monotone_blocks(self):
        line = sparkline(list(range(100)), width=10, ascii_only=True)
        ranks = [" .:-=+*#%@".index(c) for c in line]
        assert ranks == sorted(ranks)

    def test_flat_series(self):
        line = sparkline([5.0] * 10, width=10)
        assert len(set(line)) == 1

    def test_explicit_bounds_clip(self):
        line = sparkline([100.0], lo=0.0, hi=1.0, width=3, ascii_only=True)
        assert set(line) == {"@"}

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            sparkline([])

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            sparkline([1.0], width=0)


class TestReport:
    def test_flow_timelines(self, reference_three_flow_result):
        text = flow_timelines(reference_three_flow_result, ascii_only=True)
        lines = text.splitlines()
        assert len(lines) == 4  # 3 flows + time axis
        assert "astraea-ref" in text
        assert "Mbps" in text

    def test_text_report_headlines(self, reference_three_flow_result):
        text = text_report(reference_three_flow_result, ascii_only=True)
        for needle in ("utilization", "jain", "rtt", "conv", "flow 0"):
            assert needle in text

    def test_cli_plot_flag(self, tmp_path, capsys):
        import json

        from repro.cli import main

        main(["template"])
        data = json.loads(capsys.readouterr().out)
        data["duration_s"] = 5.0
        for f in data["flows"]:
            f.update(cc="cubic", start_s=0.0, duration_s=4.0)
        path = tmp_path / "s.json"
        path.write_text(json.dumps(data))
        assert main(["run", str(path), "--plot", "--ascii"]) == 0
        out = capsys.readouterr().out
        assert "flow 0" in out and "|" in out
