"""Fig. 13 — tracking a rapidly changing cellular link (§5.2).

Paper: on the LTE trace Astraea's sending rate swiftly follows the link
capacity while Vivace's probe-and-decide loop lags, inflating latency and
dropping packets.  We measure tracking quality as the correlation between
per-second goodput and per-second capacity, plus utilisation and latency.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.env import run_scenario
from repro.netsim.traces import LteTrace
from benchmarks.conftest import TRIALS, QUICK, run_once

SCHEMES = ("astraea", "vivace", "bbr", "cubic")


def _tracking_stats(cc: str, seed: int) -> dict[str, float]:
    scenario = scenarios.fig13_scenario(cc, quick=QUICK, seed=seed)
    result = run_scenario(scenario)
    trace = LteTrace(seed=seed)
    times, matrix, active = result.throughput_matrix(1.0)
    goodput = matrix[0]
    capacity = np.array([trace.capacity_mbps(t) for t in times])
    live = active[0] & (times > 3.0)
    corr = float(np.corrcoef(goodput[live], capacity[live])[0, 1])
    return {
        "tracking_corr": corr,
        "utilization": float(np.mean(goodput[live] / capacity[live])),
        "rtt_ratio": result.mean_rtt_s() / scenario.link.rtt_s,
        "loss": result.mean_loss_rate(),
    }


def test_fig13_cellular_tracking(benchmark):
    def campaign():
        out = {}
        for cc in SCHEMES:
            rows = [_tracking_stats(cc, seed)
                    for seed in range(max(TRIALS // 2, 1))]
            out[cc] = {k: float(np.mean([r[k] for r in rows]))
                       for k in rows[0]}
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 13 — LTE-trace tracking (corr of goodput with capacity)",
        ["scheme", "tracking corr", "utilization", "RTT ratio", "loss"],
        [[cc, v["tracking_corr"], v["utilization"], v["rtt_ratio"],
          v["loss"]] for cc, v in data.items()],
    )
    save_results("fig13", data)

    # Astraea tracks capacity better than Vivace and with much lower
    # latency inflation (the paper's headline for this figure).
    assert data["astraea"]["tracking_corr"] > \
        data["vivace"]["tracking_corr"]
    assert data["astraea"]["rtt_ratio"] < data["vivace"]["rtt_ratio"]
    assert data["astraea"]["tracking_corr"] > 0.5
