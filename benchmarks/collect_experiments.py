#!/usr/bin/env python3
"""Render a summary of all recorded benchmark results.

Reads every ``benchmarks/results/*.json`` written by the benchmark suite
and prints a compact digest — the raw material behind EXPERIMENTS.md.

Usage::

    python benchmarks/collect_experiments.py [--id fig06]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def flatten(prefix: str, value, out: list[tuple[str, float]]) -> None:
    if isinstance(value, dict):
        for k, v in value.items():
            flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out.append((prefix, float(value)))
    elif isinstance(value, list) and value and \
            all(isinstance(v, (int, float)) for v in value):
        out.append((f"{prefix}[0]", float(value[0])))
        out.append((f"{prefix}[-1]", float(value[-1])))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--id", default=None,
                        help="only show one experiment id")
    args = parser.parse_args()

    if not RESULTS_DIR.exists():
        raise SystemExit("no results yet: run "
                         "`pytest benchmarks/ --benchmark-only` first")
    paths = sorted(RESULTS_DIR.glob("*.json"))
    if args.id:
        paths = [p for p in paths if p.stem == args.id]
    for path in paths:
        data = json.loads(path.read_text())
        rows: list[tuple[str, float]] = []
        flatten("", data, rows)
        print(f"\n## {path.stem}")
        for key, value in rows[:40]:
            print(f"  {key:45s} {value:10.4f}")
        if len(rows) > 40:
            print(f"  ... ({len(rows) - 40} more values)")


if __name__ == "__main__":
    main()
