"""Fig. 9 — Jain indices across bandwidth x RTT (§5.1.3).

Paper: Astraea's average Jain index stays above 0.95 across 20-200 Mbps
and 30-200 ms (a wider envelope than the training range), degrading
mildly at very large RTTs (slow feedback) and in very small-BDP settings
(window rounding).
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.bench.runners import run_scheme_trials
from benchmarks.conftest import TRIALS, QUICK, run_once

BANDWIDTHS = (20.0, 50.0, 100.0, 200.0)
RTTS = (30.0, 80.0, 140.0, 200.0)


def test_fig09_fairness_grid(benchmark):
    def campaign():
        rng = np.random.default_rng(9)
        grid = {}
        for bw in BANDWIDTHS:
            for rtt in RTTS:
                n = int(rng.integers(2, 5))
                results = run_scheme_trials(
                    scenarios.fig9_scenario("astraea", bw, rtt, n,
                                            quick=QUICK),
                    max(TRIALS // 2, 1))
                grid[(bw, rtt)] = float(np.mean(
                    [r.mean_jain() for r in results]))
        return grid

    grid = run_once(benchmark, campaign)
    print_table(
        "Fig. 9 — mean Jain index across network scenarios (Astraea)",
        ["bw (Mbps)", *[f"rtt {r:.0f}ms" for r in RTTS]],
        [[bw, *[grid[(bw, rtt)] for rtt in RTTS]] for bw in BANDWIDTHS],
    )
    save_results("fig09", {f"{bw}x{rtt}": j for (bw, rtt), j
                           in grid.items()})

    values = np.array(list(grid.values()))
    # Good average fairness across the envelope; degradation concentrates
    # in the largest-RTT / smallest-BDP corners, the same two regimes the
    # paper flags (slow feedback; window rounding).  Paper: > 0.95
    # everywhere; our trained policy is weaker at the corners
    # (EXPERIMENTS.md, [partial]).
    assert values.mean() > 0.80
    assert values.min() > 0.55
    assert np.median(values) > 0.80
    # Large-RTT degradation trend: the 200 ms column is the hardest.
    col = {rtt: np.mean([grid[(bw, rtt)] for bw in BANDWIDTHS])
           for rtt in RTTS}
    assert col[200.0] <= col[30.0] + 0.02
