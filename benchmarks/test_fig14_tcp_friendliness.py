"""Fig. 14 — TCP friendliness: one scheme flow vs k CUBIC flows (§5.3.1).

Paper: Aurora and BBR grab 10-60x a CUBIC flow's share; Vivace ends up
*below* CUBIC (delay-based disadvantage); Astraea lands in between —
acceptable ratios, not starving and not starved.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.env import run_scenario
from benchmarks.conftest import TRIALS, QUICK, run_once

SCHEMES = ("astraea", "aurora", "bbr", "vivace", "vegas", "copa")
CUBIC_COUNTS = (1, 2, 4)


def _ratio(cc: str, n_cubic: int, seed: int) -> float:
    scenario = scenarios.fig14_scenario(cc, n_cubic, quick=QUICK, seed=seed)
    result = run_scenario(scenario)
    skip = scenario.duration_s / 3.0
    mine = result.flow_mean_throughput(0, skip_s=skip)
    cubics = np.mean([result.flow_mean_throughput(i, skip_s=skip)
                      for i in range(1, n_cubic + 1)])
    return float(mine / max(cubics, 1e-6))


def test_fig14_tcp_friendliness(benchmark):
    def campaign():
        out = {}
        for cc in SCHEMES:
            out[cc] = {
                n: float(np.mean([_ratio(cc, n, seed)
                                  for seed in range(max(TRIALS // 2, 1))]))
                for n in CUBIC_COUNTS
            }
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 14 — throughput ratio to CUBIC (1.0 = perfectly friendly)",
        ["scheme", *[f"vs {n} cubic" for n in CUBIC_COUNTS], "paper"],
        [[cc, *[data[cc][n] for n in CUBIC_COUNTS],
          {"aurora": "10-60x", "bbr": "10-60x", "vivace": "<1",
           "astraea": "acceptable"}.get(cc, "")]
         for cc in SCHEMES],
    )
    save_results("fig14", {cc: {str(n): v for n, v in row.items()}
                           for cc, row in data.items()})

    mean_ratio = {cc: float(np.mean(list(row.values())))
                  for cc, row in data.items()}
    # Aurora and BBR are the bullies; Astraea is much friendlier than
    # either but (unlike pure delay-based schemes) not starved by CUBIC.
    assert mean_ratio["aurora"] > 3.0
    assert mean_ratio["bbr"] > 1.5
    assert mean_ratio["astraea"] < mean_ratio["aurora"] / 2.0
    assert mean_ratio["astraea"] > 0.1
    # Vivace's delay-based behaviour yields to CUBIC.
    assert mean_ratio["vivace"] < 1.0
