"""Fig. 18 — sensitivity of fairness to the reward coefficient c3 (App. A).

Paper: retraining with c3 anywhere in (0.05, 0.35) preserves high Jain
indices.  Full retraining per coefficient is hours of compute, so this
benchmark reproduces the claim at the reward-landscape level, which is
what determines what training converges to: for every c3 in the range,
the *fair* allocation maximises the Eq. 8 reward over a dense set of
two-flow splits — i.e. the optimisation target itself is insensitive to
c3 in the published range.  With c3 = 0 (fairness term ablated) the
landscape becomes flat across splits, recovering the fairness-agnostic
behaviour of Aurora-style rewards.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results
from repro.config import LinkConfig, RewardConfig
from repro.core.reward import FlowSnapshot, RewardBlock
from repro.units import mbps_to_pps
from benchmarks.conftest import run_once

LINK = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)
C3_VALUES = (0.0, 0.05, 0.1, 0.2, 0.35)
SPLITS = np.linspace(0.5, 0.95, 10)   # share of flow 1 in a 2-flow link


def _snapshot(thr_mbps: float) -> FlowSnapshot:
    thr = mbps_to_pps(thr_mbps)
    return FlowSnapshot(throughput_pps=thr, avg_thr_pps=thr,
                        thr_std_pps=0.0, avg_rtt_s=LINK.rtt_s * 1.1,
                        loss_pps=0.0, pacing_pps=thr)


def _reward_of_split(block: RewardBlock, share: float) -> float:
    total = 100.0
    return block.compute([_snapshot(total * share),
                          _snapshot(total * (1.0 - share))]).total


def test_fig18_c3_sensitivity(benchmark):
    def campaign():
        out = {}
        for c3 in C3_VALUES:
            block = RewardBlock(LINK, RewardConfig(c_fair=c3))
            rewards = {float(s): _reward_of_split(block, s) for s in SPLITS}
            best_split = max(rewards, key=rewards.get)
            fair_reward = rewards[0.5]
            worst_reward = min(rewards.values())
            out[c3] = {
                "best_split": best_split,
                "fair_minus_worst": fair_reward - worst_reward,
                "fair_reward": fair_reward,
            }
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 18 — reward landscape vs fairness coefficient c3",
        ["c3", "reward-maximising split", "fair-vs-worst margin", "paper"],
        [[c3, v["best_split"], v["fair_minus_worst"],
          "high Jain" if c3 > 0 else "(ablated)"]
         for c3, v in data.items()],
    )
    save_results("fig18", {str(k): v for k, v in data.items()})

    # For every c3 in the published range the fair split maximises reward.
    for c3 in (0.05, 0.1, 0.2, 0.35):
        assert data[c3]["best_split"] == 0.5, c3
        assert data[c3]["fair_minus_worst"] > 0.0
    # Ablating the term removes the preference (margin collapses).
    assert data[0.0]["fair_minus_worst"] < \
        0.2 * data[0.35]["fair_minus_worst"]
    # And the margin grows monotonically with c3 (more pressure to fair).
    margins = [data[c3]["fair_minus_worst"] for c3 in C3_VALUES]
    assert all(a <= b + 1e-12 for a, b in zip(margins, margins[1:]))
