"""Fig. 22 — high-speed WAN: 10 Gbps, 10 ms base RTT (App. B.4).

Paper: Astraea delivers higher throughput than Orca and Vivace thanks to
fast convergence to the link bandwidth, with low latency inflation.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.env import run_scenario
from benchmarks.conftest import TRIALS, QUICK, run_once

SCHEMES = ("astraea", "orca", "vivace", "bbr", "cubic")


def _run(cc: str, seed: int) -> dict[str, float]:
    scenario = scenarios.fig22_scenario(cc, quick=QUICK, seed=seed)
    result = run_scenario(scenario)
    return {
        "throughput_gbps": result.flow_mean_throughput(0, skip_s=3.0) / 1e3,
        "rtt_ms": result.mean_rtt_s(skip_s=3.0) * 1e3,
    }


def test_fig22_highspeed_wan(benchmark):
    def campaign():
        out = {}
        for cc in SCHEMES:
            rows = [_run(cc, seed) for seed in range(max(TRIALS // 2, 1))]
            out[cc] = {k: float(np.mean([r[k] for r in rows]))
                       for k in rows[0]}
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 22 — 10 Gbps WAN (10 ms base RTT)",
        ["scheme", "throughput (Gbps)", "RTT (ms)", "paper"],
        [[cc, v["throughput_gbps"], v["rtt_ms"],
          {"astraea": "> orca, > vivace"}.get(cc, "")]
         for cc, v in data.items()],
    )
    save_results("fig22", data)

    assert data["astraea"]["throughput_gbps"] > \
        data["vivace"]["throughput_gbps"]
    assert data["astraea"]["throughput_gbps"] > 5.0
    assert data["astraea"]["rtt_ms"] < 10.0 * 2.0
