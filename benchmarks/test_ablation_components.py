"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these benches exercise the knobs the paper argues
for, on the reproduction's own substrate:

* **Observation delay** — senders observing bottleneck conditions one RTT
  late is what makes large-RTT scenarios harder; removing the delay line
  (instant observation) must not make the canonical scenario easier for a
  well-behaved controller, and keeping it must still converge.
* **Reward terms** — zeroing c3 (fairness) must visibly relax the reward
  gap between fair and starved allocations (the training signal the
  multi-agent design exists to provide).
* **Centralised critic** — the TD3 learner with the Table 2 global state
  must fit values at least as well as a local-only critic on the same
  replay data (the §3.4 variance argument, measured as critic loss).
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results
from repro.config import LinkConfig, RewardConfig, TrainingConfig, replace
from repro.core.reward import FlowSnapshot, RewardBlock
from repro.rl import ReplayBuffer, TD3Learner
from repro.units import mbps_to_pps
from benchmarks.conftest import run_once

LINK = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)


def _snap(thr_mbps, rtt=0.033):
    thr = mbps_to_pps(thr_mbps)
    return FlowSnapshot(throughput_pps=thr, avg_thr_pps=thr,
                        thr_std_pps=0.0, avg_rtt_s=rtt, loss_pps=0.0,
                        pacing_pps=thr)


def test_ablation_fairness_term(benchmark):
    def campaign():
        out = {}
        for c3 in (0.0, 0.02):
            block = RewardBlock(LINK, RewardConfig(c_fair=c3))
            fair = block.compute([_snap(50.0), _snap(50.0)]).total
            starved = block.compute([_snap(95.0), _snap(5.0)]).total
            out[c3] = {"fair": fair, "starved": starved,
                       "gap": fair - starved}
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Ablation — reward gap fair-vs-starved with and without c3",
        ["c3", "fair reward", "starved reward", "gap"],
        [[c3, v["fair"], v["starved"], v["gap"]] for c3, v in data.items()],
    )
    save_results("ablation_fairness_term", {str(k): v
                                            for k, v in data.items()})
    assert data[0.02]["gap"] > 2.0 * max(data[0.0]["gap"], 0.0)


def test_ablation_centralised_critic(benchmark):
    """Critic regression quality with vs without the global state.

    The reward depends on global quantities the local state cannot see;
    the centralised critic should therefore reach a lower TD error on
    identical experience.
    """

    def campaign():
        cfg = replace(TrainingConfig(), hidden_layers=(32, 32),
                      batch_size=64)
        rng = np.random.default_rng(0)
        local_dim, global_dim = 8, 4
        buf = ReplayBuffer(4000, local_dim, global_dim, 1, seed=0)
        for _ in range(4000):
            s = rng.normal(size=local_dim)
            g = rng.normal(size=global_dim)
            a = rng.uniform(-1, 1, size=1)
            # Reward driven mostly by global context (e.g. competitors).
            r = float(np.tanh(g.sum()) - 0.2 * (a[0] ** 2))
            buf.add(s, g, a, r, s, g, True)
        losses = {}
        for use_global in (True, False):
            learner = TD3Learner(local_dim, global_dim, cfg=cfg,
                                 use_global=use_global, seed=1)
            tail = []
            for step in range(400):
                out = learner.update(buf.sample(64))
                if step >= 300:
                    tail.append(out["critic_loss"])
            losses["global" if use_global else "local"] = float(
                np.mean(tail))
        return losses

    losses = run_once(benchmark, campaign)
    print_table(
        "Ablation — critic TD error with vs without the global state",
        ["critic", "steady critic loss"],
        [[k, v] for k, v in losses.items()],
    )
    save_results("ablation_critic", losses)
    assert losses["global"] < losses["local"] * 0.8


def test_ablation_observation_delay(benchmark):
    """The fluid engine's one-RTT observation delay in action.

    A controller reacting to *stale* conditions needs several RTTs to
    re-converge after a bandwidth change; the sample availability times in
    the engine must reflect the path RTT (no clairvoyant senders).
    """

    def campaign():
        from repro.config import LinkConfig as LC
        from repro.netsim import FluidNetwork

        out = {}
        for rtt_ms in (20.0, 200.0):
            link = LC(bandwidth_mbps=100.0, rtt_ms=rtt_ms, buffer_bdp=1.0)
            net = FluidNetwork(link)
            fid = net.add_flow(base_rtt_s=rtt_ms / 1e3, cwnd_pkts=100.0)
            net.advance(0.002)
            monitor = net.monitor(fid)
            pending = list(monitor._pending)
            out[rtt_ms] = pending[0].avail_at - pending[0].time
        return out

    delays = run_once(benchmark, campaign)
    print_table(
        "Ablation — observation delay scales with path RTT",
        ["base RTT (ms)", "sample visibility delay (s)"],
        [[rtt, d] for rtt, d in delays.items()],
    )
    save_results("ablation_obs_delay", {str(k): v
                                        for k, v in delays.items()})
    assert delays[200.0] > 5.0 * delays[20.0]
