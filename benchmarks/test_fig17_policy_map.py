"""Fig. 17 — interpreting the learned policy (§5.5).

Paper: fixing the max-observed throughput (200 Mbps) and base RTT (40 ms)
and sweeping observed delay for flows at different current throughputs,
the model's action decreases monotonically with delay and each throughput
level has its own zero-crossing (equilibrium) delay — the structure that
makes competing flows trade bandwidth until they meet at the fair point.

We plot the same map for the shipped policy and assert the two structural
properties.  EXPERIMENTS.md discusses the zero-crossing orientation: for
the bandwidth-transfer argument to be stable, the equilibrium delay must
*decrease* with the flow's own throughput (high-throughput flows back off
first), which is what both the analytic reference and the trained model
exhibit.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results
from repro.core.policy import PolicyBundle, load_default_policy, new_actor
from repro.core.state import LocalStateBlock
from repro.netsim.stats import MtpStats
from repro.units import mbps_to_pps
from benchmarks.conftest import run_once

THR_MAX_MBPS = 200.0
BASE_RTT_S = 0.040
THROUGHPUTS_MBPS = (40.0, 80.0, 120.0, 160.0)
DELAY_RATIOS = np.linspace(1.0, 2.0, 21)


def _stats(thr_mbps: float, delay_ratio: float) -> MtpStats:
    thr = mbps_to_pps(thr_mbps)
    rtt = BASE_RTT_S * delay_ratio
    cwnd = thr * rtt
    return MtpStats(
        time_s=1.0, duration_s=0.03, throughput_pps=thr, avg_rtt_s=rtt,
        min_rtt_s=rtt, sent_pkts=thr * 0.03, delivered_pkts=thr * 0.03,
        lost_pkts=0.0, pkts_in_flight=cwnd, cwnd_pkts=cwnd,
        pacing_pps=thr, srtt_s=rtt)


def _action_map(bundle: PolicyBundle) -> dict[float, list[float]]:
    """action(delay) per throughput level, with a warmed-up state block."""
    out = {}
    for thr in THROUGHPUTS_MBPS:
        actions = []
        for ratio in DELAY_RATIOS:
            block = LocalStateBlock(history=bundle.history)
            # Anchor the flow's history: it has seen thr_max and base RTT.
            block.thr_max_pps = mbps_to_pps(THR_MAX_MBPS)
            block.lat_min_s = BASE_RTT_S
            for _ in range(bundle.history):
                state = block.update(_stats(thr, ratio))
            actions.append(bundle.act(state))
        out[thr] = actions
    return out


def _zero_crossing(actions: list[float]) -> float:
    for ratio, action in zip(DELAY_RATIOS, actions):
        if action <= 0:
            return float(ratio)
    return float(DELAY_RATIOS[-1])


def test_fig17_state_action_map(benchmark):
    def campaign():
        bundle = load_default_policy("astraea") or \
            PolicyBundle(actor=new_actor())
        return _action_map(bundle)

    amap = run_once(benchmark, campaign)
    sample_cols = [1.0, 1.2, 1.5, 2.0]
    idx = [int(np.argmin(np.abs(DELAY_RATIOS - c))) for c in sample_cols]
    print_table(
        "Fig. 17 — model action vs observed delay ratio "
        "(thr_max 200 Mbps, base RTT 40 ms)",
        ["flow thr (Mbps)", *[f"x{c}" for c in sample_cols],
         "equilibrium ratio"],
        [[thr, *[round(actions[i], 3) for i in idx],
          _zero_crossing(actions)] for thr, actions in amap.items()],
    )
    save_results("fig17", {
        "delay_ratios": DELAY_RATIOS.tolist(),
        "actions": {str(k): v for k, v in amap.items()},
        "equilibria": {str(k): _zero_crossing(v) for k, v in amap.items()},
    })

    for thr, actions in amap.items():
        arr = np.asarray(actions)
        # Broadly decreasing in delay (a trained policy may saturate at
        # +-1 on both ends, hence >=).
        assert arr[0] >= arr[-1], thr
        smoothed = np.convolve(arr, np.ones(5) / 5, mode="valid")
        assert np.sum(np.diff(smoothed) <= 1e-3) >= \
            0.7 * (len(smoothed) - 1), thr
    # The family is not degenerate: at least one level transitions from
    # increase to decrease inside the sweep.
    assert any(max(a) > 0 > min(a) for a in amap.values())
    # Each throughput level has its own equilibrium, and the highest
    # throughput backs off no later than the lowest (stable orientation).
    eq = {thr: _zero_crossing(a) for thr, a in amap.items()}
    assert eq[THROUGHPUTS_MBPS[-1]] <= eq[THROUGHPUTS_MBPS[0]] + 0.05
