"""Fig. 2 — tuning Vivace's conversion factor trades speed for stability.

Paper (§2): enlarging theta0 makes Vivace converge quickly on the 120 ms
link (Fig. 2a), but the same setting oscillates so badly at 12 ms RTT that
convergence hardly happens (Fig. 2b).  The point: local-objective knobs do
not map robustly onto the global convergence properties.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.bench.runners import run_scheme_trials
from repro.metrics import convergence_report, mean_convergence_time
from benchmarks.conftest import TRIALS, QUICK, run_once

ENHANCED_THETA0 = 8.0
PENALTY_S = 60.0


def _mean_conv(results):
    times = [mean_convergence_time(convergence_report(r),
                                   penalty_s=PENALTY_S) for r in results]
    return float(np.mean(times))


def _mean_stability_proxy(results):
    """Std of per-flow throughput over the steady tail, averaged."""
    values = []
    for r in results:
        t, m, a = r.throughput_matrix(0.5)
        tail = t > t.max() * 0.5
        for i in range(m.shape[0]):
            live = a[i] & tail
            if live.sum() > 4:
                values.append(np.std(m[i, live]))
    return float(np.mean(values))


def test_fig02_vivace_theta0_tradeoff(benchmark):
    def campaign():
        out = {}
        for label, rtt, theta0 in [
            ("default @120ms", 120.0, 1.0),
            ("enhanced @120ms", 120.0, ENHANCED_THETA0),
            ("enhanced @12ms", 12.0, ENHANCED_THETA0),
            ("default @12ms", 12.0, 1.0),
        ]:
            results = run_scheme_trials(
                scenarios.fig1b_scenario(rtt_ms=rtt, theta0=theta0,
                                         quick=QUICK), TRIALS)
            out[label] = {
                "conv_s": _mean_conv(results),
                "jain": float(np.mean([r.mean_jain() for r in results])),
                "stability_mbps": _mean_stability_proxy(results),
            }
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 2 — Vivace conversion-factor tuning",
        ["setting", "convergence (s)", "mean Jain", "thr std (Mbps)",
         "paper"],
        [[k, v["conv_s"], v["jain"], v["stability_mbps"],
          {"default @120ms": "slow", "enhanced @120ms": "fast+fair",
           "enhanced @12ms": "unstable", "default @12ms": "-"}[k]]
         for k, v in data.items()],
    )
    save_results("fig02", data)
    # Fig. 2a: the enhanced setting converges materially faster (or ends
    # fairer) at 120 ms.
    assert (data["enhanced @120ms"]["conv_s"]
            < data["default @120ms"]["conv_s"]
            or data["enhanced @120ms"]["jain"]
            > data["default @120ms"]["jain"] + 0.05)
    # Fig. 2b: at 12 ms the enhanced setting is less stable than it is at
    # 120 ms (the regression the paper demonstrates).
    assert data["enhanced @12ms"]["stability_mbps"] > \
        data["enhanced @120ms"]["stability_mbps"]
