"""Fig. 1 — motivation: Aurora is unfair; Vivace converges slowly.

Paper (§2): on an 80 Mbps / 60 ms link with a deep (4.8 MB) buffer, an
incumbent Aurora flow leaves a later Aurora arrival essentially nothing
(Fig. 1a).  On a 100 Mbps / 120 ms link, three staggered Vivace flows can
hardly reach the fair point before they terminate (Fig. 1b).
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.bench.runners import run_scheme_trials
from benchmarks.conftest import TRIALS, QUICK, run_once


def test_fig01a_aurora_unfair(benchmark):
    def campaign():
        results = run_scheme_trials(scenarios.fig1a_scenario(quick=QUICK),
                                    TRIALS)
        shares = []
        for r in results:
            t, m, a = r.throughput_matrix(0.5)
            overlap = a.all(axis=0)
            shares.append(m[:, overlap].mean(axis=1))
        return np.mean(shares, axis=0)

    incumbent, newcomer = run_once(benchmark, campaign)
    print_table(
        "Fig. 1a — Aurora shares no bandwidth (80 Mbps, 60 ms, deep buffer)",
        ["flow", "mean throughput (Mbps)", "paper"],
        [["incumbent", float(incumbent), "~full link"],
         ["late arrival", float(newcomer), "~none"]],
    )
    save_results("fig01a", {"incumbent_mbps": float(incumbent),
                            "newcomer_mbps": float(newcomer)})
    # Shape: the incumbent keeps an order of magnitude more than the
    # newcomer, and most of the link.
    assert incumbent > 8 * newcomer
    assert incumbent > 0.6 * 80.0


def test_fig01b_vivace_converges_slowly(benchmark):
    def campaign():
        vivace = run_scheme_trials(
            scenarios.fig1b_scenario(rtt_ms=120.0, quick=QUICK), TRIALS)
        astraea = run_scheme_trials(
            scenarios.fig6_scenario("astraea", quick=QUICK), TRIALS)
        return (np.mean([r.mean_jain() for r in vivace]),
                np.mean([r.mean_jain() for r in astraea]))

    vivace_jain, astraea_jain = run_once(benchmark, campaign)
    print_table(
        "Fig. 1b — Vivace at 120 ms RTT can hardly reach fairness",
        ["scheme", "mean Jain while competing", "paper"],
        [["vivace @120ms", vivace_jain, "far from 1.0"],
         ["astraea @30ms (Fig. 6 ref)", astraea_jain, "~0.99"]],
    )
    save_results("fig01b", {"vivace_jain": vivace_jain,
                            "astraea_jain": astraea_jain})
    assert vivace_jain < astraea_jain - 0.1
