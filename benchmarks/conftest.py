"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper: it runs the
paper's workload (in time-shrunk "quick" mode by default — set
``REPRO_BENCH_FULL=1`` for the full durations), prints the rows/series the
paper reports, saves the measured values under ``benchmarks/results/`` for
EXPERIMENTS.md, and asserts the *shape* of the result (who wins, by
roughly what factor) rather than absolute numbers.

Benchmarks use ``benchmark.pedantic(fn, rounds=1, iterations=1)``: each
experiment is a full simulation campaign, not a microbenchmark, so one
round is what gets timed.
"""

from __future__ import annotations

import os

import pytest

QUICK = os.environ.get("REPRO_BENCH_FULL", "") != "1"
TRIALS = 2 if QUICK else 10


@pytest.fixture(scope="session")
def quick() -> bool:
    """Whether benches run in time-shrunk mode."""
    return QUICK


@pytest.fixture(scope="session")
def trials() -> int:
    """Trial repetitions per scenario."""
    return TRIALS


def run_once(benchmark, fn):
    """Time one full campaign run and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
