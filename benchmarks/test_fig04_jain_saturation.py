"""Fig. 4 — the Jain index saturates near equality; Astraea's R_fair does not.

Paper (§3.3): with two flows fully using a 100 Mbps bottleneck, moving the
throughput gap from 0 to 20 Mbps moves the Jain index by only ~0.038 but
Astraea's fairness metric by ~0.1 (plotted as 1 - R_fair for readability),
which is why R_fair keeps the training signal alive near the fair point.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results
from repro.metrics import astraea_fairness_metric, jain_index
from benchmarks.conftest import run_once


def test_fig04_jain_vs_rfair_sensitivity(benchmark):
    def campaign():
        gaps = np.arange(0.0, 101.0, 10.0)
        rows = []
        for gap in gaps:
            alloc = [50.0 + gap / 2.0, 50.0 - gap / 2.0]
            rows.append({
                "gap_mbps": float(gap),
                "jain": jain_index(alloc),
                "one_minus_rfair": 1.0 - astraea_fairness_metric(alloc),
            })
        return rows

    rows = run_once(benchmark, campaign)
    print_table(
        "Fig. 4 — Jain index vs 1 - R_fair over the throughput gap",
        ["gap (Mbps)", "Jain", "1 - R_fair"],
        [[r["gap_mbps"], r["jain"], r["one_minus_rfair"]] for r in rows],
    )
    save_results("fig04", {"rows": rows})

    by_gap = {r["gap_mbps"]: r for r in rows}
    jain_drop_20 = by_gap[0.0]["jain"] - by_gap[20.0]["jain"]
    rfair_drop_20 = by_gap[0.0]["one_minus_rfair"] - \
        by_gap[20.0]["one_minus_rfair"]
    # The paper's quoted numbers: 0.038 vs ~0.19 (theirs uses a slightly
    # different normalisation; ours yields exactly 0.1 for the same gap).
    assert abs(jain_drop_20 - 0.0385) < 0.002
    assert abs(rfair_drop_20 - 0.1) < 0.005
    assert rfair_drop_20 > 2.0 * jain_drop_20
    # Both metrics are monotone in the gap.
    jains = [r["jain"] for r in rows]
    assert all(a >= b - 1e-12 for a, b in zip(jains, jains[1:]))
