"""Fig. 21 — cellular link statistics: throughput vs normalised delay (App. B.3).

Paper: over the LTE trace Astraea maintains high throughput with low
latency inflation; Aurora and Vivace buy throughput with heavy latency;
Copa and Vegas keep delay low but sacrifice utilisation.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.env import run_scenario
from repro.netsim.traces import LteTrace
from benchmarks.conftest import TRIALS, QUICK, run_once

SCHEMES = ("astraea", "aurora", "vivace", "copa", "vegas", "bbr", "cubic")


def _run(cc: str, seed: int) -> dict[str, float]:
    scenario = scenarios.fig13_scenario(cc, quick=QUICK, seed=seed)
    result = run_scenario(scenario)
    trace = LteTrace(seed=seed)
    # Mean capacity over the actual run window (the trace is long-lived).
    ts = np.arange(3.0, scenario.duration_s, 0.1)
    mean_capacity = float(np.mean([trace.capacity_mbps(t) for t in ts]))
    return {
        "norm_throughput": result.flow_mean_throughput(0, skip_s=3.0)
        / mean_capacity,
        "rtt_ratio": result.mean_rtt_s(skip_s=3.0) / scenario.link.rtt_s,
    }


def test_fig21_cellular_statistics(benchmark):
    def campaign():
        out = {}
        for cc in SCHEMES:
            rows = [_run(cc, seed) for seed in range(max(TRIALS // 2, 1))]
            out[cc] = {k: float(np.mean([r[k] for r in rows]))
                       for k in rows[0]}
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 21 — cellular link: normalised throughput vs RTT ratio",
        ["scheme", "thr / mean capacity", "RTT ratio", "paper"],
        [[cc, v["norm_throughput"], v["rtt_ratio"],
          {"astraea": "high thr, low delay",
           "aurora": "thr at high delay", "vivace": "thr at high delay",
           "copa": "low delay, low util", "vegas": "low delay, low util"}
          .get(cc, "")] for cc, v in data.items()],
    )
    save_results("fig21", data)

    astraea = data["astraea"]
    # High utilisation with bounded latency inflation (the bufferbloat
    # guard caps the standing queue at a few times the base RTT when
    # capacity collapses)...
    assert astraea["norm_throughput"] > 0.5
    assert astraea["rtt_ratio"] < 4.0
    # ...dramatically less than Vivace, whose probe-and-decide loop cannot
    # track ms-scale capacity swings (the Fig. 13/21 headline), and less
    # than loss-blind CUBIC filling the deep buffer.
    assert data["vivace"]["rtt_ratio"] > 5.0 * astraea["rtt_ratio"]
    assert data["cubic"]["rtt_ratio"] > 2.0 * astraea["rtt_ratio"]
