"""Fig. 15 — "real-world" WAN paths: throughput vs one-way delay (§5.3.2).

The genuine experiment runs residential-to-AWS Internet paths; offline we
substitute synthetic WAN paths (jittered capacity, bursty cross traffic,
light stochastic loss — DESIGN.md §2).  Paper headlines: Astraea defines
the throughput/latency frontier — e.g. 3.1x Orca's throughput
inter-continentally and lower latency inflation than BBR.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.env import run_scenario
from benchmarks.conftest import TRIALS, QUICK, run_once

SCHEMES = ("astraea", "bbr", "cubic", "vivace", "orca", "copa", "remy")


def _run(cc: str, kind: str, seed: int) -> dict[str, float]:
    scenario = scenarios.fig15_scenario(cc, kind=kind, quick=QUICK,
                                        seed=seed)
    result = run_scenario(scenario)
    return {
        "throughput_mbps": result.flow_mean_throughput(0, skip_s=5.0),
        "one_way_delay_ms": result.mean_rtt_s() * 1e3 / 2.0,
    }


def test_fig15_wan_paths(benchmark):
    def campaign():
        out = {}
        for kind in ("intra", "inter"):
            for cc in SCHEMES:
                rows = [_run(cc, kind, seed)
                        for seed in range(max(TRIALS // 2, 1))]
                out[(kind, cc)] = {
                    k: float(np.mean([r[k] for r in rows])) for k in rows[0]
                }
        return out

    data = run_once(benchmark, campaign)
    for kind in ("intra", "inter"):
        print_table(
            f"Fig. 15 — {kind}-continental path: throughput vs one-way delay",
            ["scheme", "throughput (Mbps)", "one-way delay (ms)"],
            [[cc, data[(kind, cc)]["throughput_mbps"],
              data[(kind, cc)]["one_way_delay_ms"]] for cc in SCHEMES],
        )
    save_results("fig15", {f"{kind}:{cc}": v
                           for (kind, cc), v in data.items()})

    inter = {cc: data[("inter", cc)] for cc in SCHEMES}
    # Astraea on the frontier: much more throughput than Orca, lower
    # latency inflation than BBR.
    assert inter["astraea"]["throughput_mbps"] > \
        1.5 * inter["orca"]["throughput_mbps"]
    assert inter["astraea"]["one_way_delay_ms"] < \
        inter["bbr"]["one_way_delay_ms"]
    # And it is competitive with the best throughput overall.
    best = max(v["throughput_mbps"] for v in inter.values())
    assert inter["astraea"]["throughput_mbps"] > 0.5 * best
