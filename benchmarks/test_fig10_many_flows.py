"""Fig. 10 — fairness with many competing flows (§5.1.3).

Paper: on a 600 Mbps / 20 ms bottleneck, Astraea preserves high Jain
indices as the flow count grows from 10 to 50 even though it trained with
at most 5 flows — the normalisation of the state features is what makes
the policy population-size-agnostic.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.bench.runners import run_scheme_trials
from repro.metrics import jain_index
from benchmarks.conftest import TRIALS, QUICK, run_once

FLOW_COUNTS = (10, 20, 30, 50)


def test_fig10_many_flows(benchmark):
    def campaign():
        out = {}
        for n in FLOW_COUNTS:
            results = run_scheme_trials(
                scenarios.fig10_scenario("astraea", n, quick=QUICK),
                max(TRIALS // 2, 1))
            jains, utils = [], []
            for r in results:
                skip = r.duration_s / 2.0
                shares = [r.flow_mean_throughput(i, skip_s=skip)
                          for i in range(n)]
                jains.append(jain_index(shares))
                utils.append(r.utilization(skip_s=skip))
            out[n] = {"jain": float(np.mean(jains)),
                      "utilization": float(np.mean(utils))}
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 10 — fairness vs number of competing flows "
        "(600 Mbps, 20 ms)",
        ["flows", "Jain", "utilization", "paper"],
        [[n, v["jain"], v["utilization"], "high (>0.9)"]
         for n, v in data.items()],
    )
    save_results("fig10", {str(n): v for n, v in data.items()})

    for n, v in data.items():
        assert v["jain"] > 0.85, f"{n} flows"
        assert v["utilization"] > 0.7, f"{n} flows"
