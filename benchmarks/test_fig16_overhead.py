"""Fig. 16 — CPU overhead and inference-service scalability (§5.4).

Paper: (a) Astraea's shared C++ batch inference service costs ~30% less
CPU than Orca's per-flow servers at one flow per link; (b) Orca's overhead
scales linearly with flow count (an 80-core box cannot hold 1000 flows)
while Astraea's batched service grows sub-linearly.  We reproduce the
architectural comparison over the NumPy actor: same request timeline,
batched-shared vs per-flow-instance serving, measured in process-CPU
seconds and forward passes.
"""

from __future__ import annotations

from repro.bench import print_table, save_results
from repro.core.policy import PolicyBundle, load_default_policy, new_actor
from repro.service import (
    BatchedInferenceService,
    PerFlowServers,
    synthetic_request_trace,
)
from benchmarks.conftest import run_once

FLOW_COUNTS = (1, 10, 100, 1000)
DURATION_S = 2.0


def _bundle() -> PolicyBundle:
    return load_default_policy("astraea") or PolicyBundle(actor=new_actor())


def test_fig16_overhead_and_scalability(benchmark):
    def campaign():
        bundle = _bundle()
        out = {}
        for n in FLOW_COUNTS:
            trace = synthetic_request_trace(
                n_flows=n, duration_s=DURATION_S, mtp_s=0.020,
                state_dim=bundle.actor.in_dim, seed=n)
            batched = BatchedInferenceService(bundle, batch_window_s=0.005)
            batched.serve_trace(trace)
            per_flow = PerFlowServers(bundle, n_flows=n)
            per_flow.serve_trace(trace)
            out[n] = {
                "batched_cpu_s": batched.accounting.cpu_time_s,
                "perflow_cpu_s": per_flow.accounting.cpu_time_s,
                "batched_passes": batched.accounting.forward_passes,
                "perflow_passes": per_flow.accounting.forward_passes,
                "mean_batch": batched.accounting.mean_batch_size,
            }
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 16 — batched service vs per-flow servers "
        f"({DURATION_S:.0f} s of 20 ms-MTP requests)",
        ["flows", "batched CPU (s)", "per-flow CPU (s)", "batched passes",
         "per-flow passes", "mean batch"],
        [[n, v["batched_cpu_s"], v["perflow_cpu_s"], v["batched_passes"],
          v["perflow_passes"], v["mean_batch"]] for n, v in data.items()],
    )
    save_results("fig16", {str(n): v for n, v in data.items()})

    # (a) At high flow counts the shared batched service is much cheaper.
    assert data[1000]["batched_cpu_s"] < 0.5 * data[1000]["perflow_cpu_s"]
    # (b) Per-flow cost scales linearly with flows; batched sub-linearly.
    perflow_growth = data[1000]["perflow_cpu_s"] / \
        max(data[10]["perflow_cpu_s"], 1e-9)
    batched_growth = data[1000]["batched_cpu_s"] / \
        max(data[10]["batched_cpu_s"], 1e-9)
    assert batched_growth < perflow_growth
    # Forward-pass accounting: batching collapses the pass count.
    assert data[1000]["batched_passes"] < data[1000]["perflow_passes"] / 5
