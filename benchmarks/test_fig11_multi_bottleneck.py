"""Fig. 11 — max-min fairness across two bottlenecks (§5.1.4).

Paper: in the parking-lot topology (Link 1 = 100 Mbps shared, Link 2 =
20 Mbps crossed only by the two FS-2 flows), the measured throughputs of
FS-1 and FS-2 closely follow the ideal max-min allocation as the FS-1
count sweeps across the crossover at 8 flows.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.env import run_topology
from repro.netsim.topology import parking_lot_ideal_shares
from benchmarks.conftest import TRIALS, QUICK, run_once

FS1_COUNTS = (2, 4, 8, 12)


def test_fig11_multi_bottleneck(benchmark):
    def campaign():
        out = {}
        for k in FS1_COUNTS:
            fs1_vals, fs2_vals = [], []
            for seed in range(max(TRIALS // 2, 1)):
                topo = scenarios.fig11_topology("astraea", n_fs1=k,
                                                quick=QUICK, seed=seed)
                result = run_topology(topo)
                skip = topo.duration_s / 2.0
                fs1_vals.append(np.mean(
                    [result.flow_mean_throughput(i, skip_s=skip)
                     for i in range(k)]))
                fs2_vals.append(np.mean(
                    [result.flow_mean_throughput(i, skip_s=skip)
                     for i in range(k, k + 2)]))
            ideal_fs1, ideal_fs2 = parking_lot_ideal_shares(k)
            out[k] = {
                "fs1_mbps": float(np.mean(fs1_vals)),
                "fs2_mbps": float(np.mean(fs2_vals)),
                "ideal_fs1": ideal_fs1,
                "ideal_fs2": ideal_fs2,
            }
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 11 — parking-lot topology: measured vs ideal max-min shares",
        ["FS-1 flows", "FS-1 (Mbps)", "ideal", "FS-2 (Mbps)", "ideal"],
        [[k, v["fs1_mbps"], v["ideal_fs1"], v["fs2_mbps"], v["ideal_fs2"]]
         for k, v in data.items()],
    )
    save_results("fig11", {str(k): v for k, v in data.items()})

    for k, v in data.items():
        assert v["fs1_mbps"] == pytest_approx(v["ideal_fs1"], 0.35), k
        assert v["fs2_mbps"] == pytest_approx(v["ideal_fs2"], 0.35), k
    # The crossover: before it FS-1 flows get more than FS-2; at/after it
    # everyone converges to the common-bottleneck share.
    assert data[2]["fs1_mbps"] > data[2]["fs2_mbps"] * 2.0
    assert abs(data[12]["fs1_mbps"] - data[12]["fs2_mbps"]) < 4.0


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
