"""Robustness report — per-fault recovery metrics across CC schemes.

The ROADMAP's "bench robustness report": every scheme runs the
``robustness_scenario`` family under each fault primitive on both network
engines, and the table records how fast (and whether) each recovers —
time back to 90% of the pre-fault steady state, Jain re-convergence,
latency overshoot and goodput lost.  Astraea's claim under test is that
its convergence properties (fairness, speed, stability) survive
disturbances the training envelope never contained.

The default (quick) campaign covers a representative scheme subset so the
suite stays runnable per-commit; the full 12-scheme x 5-fault x 2-engine
cross product — which doubles as a broad correctness sweep of the fault
layer — is marked ``slow`` (run with ``-m slow``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table, save_markdown, save_results
from repro.bench.robustness import (
    ALL_SCHEMES,
    ENGINES,
    FAULT_KINDS,
    TABLE_HEADERS,
    markdown_report,
    run_robustness_sweep,
    table_rows,
)
from benchmarks.conftest import TRIALS, QUICK, run_once

QUICK_SCHEMES = ("astraea", "cubic", "bbr", "vivace")
QUICK_KINDS = ("blackout", "flap", "loss-burst")

_CACHE: dict = {}


def campaign():
    if "payload" not in _CACHE:
        _CACHE["payload"] = run_robustness_sweep(
            schemes=QUICK_SCHEMES, kinds=QUICK_KINDS, engines=ENGINES,
            trials=TRIALS, quick=QUICK)
    return _CACHE["payload"]


def _cells(payload, **match):
    return [c for c in payload["cells"]
            if all(c[k] == v for k, v in match.items())]


def test_robustness_recovery_table(benchmark):
    payload = run_once(benchmark, campaign)
    print_table("Robustness — post-fault recovery", TABLE_HEADERS,
                table_rows(payload))
    save_results("robustness_bench", payload)
    save_markdown("robustness_bench", markdown_report(payload))

    # Full coverage: every (scheme, kind, engine) cell ran every trial.
    assert len(payload["cells"]) == \
        len(QUICK_SCHEMES) * len(QUICK_KINDS) * len(ENGINES)
    for cell in payload["cells"]:
        assert cell["trials"] == TRIALS
        assert cell["baseline_mbps"] > 0
        assert cell["peak_rtt_overshoot_ms"] >= 0
        assert cell["goodput_lost_mbit"] >= 0

    # Macro semantics: every scheme recovers from a short blackout on
    # both engines — the link comes back, so must the throughput.
    for cell in _cells(payload, kind="blackout"):
        assert cell["recovered"] == cell["trials"], \
            f"{cell['scheme']}/{cell['engine']} never recovered"
        assert np.isfinite(cell["recovery_time_s"])

    # A blackout (total outage) costs goodput; the fault layer must not
    # report a free lunch.
    for cell in _cells(payload, kind="blackout", engine="fluid"):
        assert cell["goodput_lost_mbit"] > 1.0, cell["scheme"]


def test_robustness_fault_kinds_are_distinguishable(benchmark):
    """Different fault kinds leave different recovery signatures."""

    def analyse():
        payload = campaign()
        out = {}
        for kind in QUICK_KINDS:
            cells = _cells(payload, kind=kind, engine="fluid")
            out[kind] = {
                "mean_lost_mbit": float(np.mean(
                    [c["goodput_lost_mbit"] for c in cells])),
                "mean_overshoot_ms": float(np.mean(
                    [c["peak_rtt_overshoot_ms"] for c in cells])),
            }
        return out

    data = run_once(benchmark, analyse)
    print_table(
        "Robustness — fault-kind signatures (fluid engine)",
        ["fault", "mean goodput lost (Mbit)", "mean RTT overshoot (ms)"],
        [[k, v["mean_lost_mbit"], v["mean_overshoot_ms"]]
         for k, v in data.items()],
    )
    save_results("robustness_kinds", data)
    # A capacity flap (several seconds at 25%) starves flows for longer
    # than the sub-second blackout, so it costs more goodput.
    assert data["flap"]["mean_lost_mbit"] > data["blackout"]["mean_lost_mbit"]
    # Loss bursts hurt goodput without the queue-drain latency spike a
    # capacity fault causes.
    assert data["loss-burst"]["mean_overshoot_ms"] < \
        data["flap"]["mean_overshoot_ms"]


@pytest.mark.slow
def test_robustness_full_sweep(benchmark):
    """All registered schemes x all 5 fault kinds x both engines."""

    def full():
        return run_robustness_sweep(schemes=ALL_SCHEMES, kinds=FAULT_KINDS,
                                    engines=ENGINES, trials=TRIALS,
                                    quick=QUICK)

    payload = run_once(benchmark, full)
    print_table("Robustness — full sweep", TABLE_HEADERS,
                table_rows(payload))
    save_results("robustness_full", payload)
    save_markdown("robustness_full", markdown_report(payload))
    assert len(payload["cells"]) == \
        len(ALL_SCHEMES) * len(FAULT_KINDS) * len(ENGINES)
    # Non-destructive faults (the link itself survives): most cells must
    # re-attain steady state inside the episode on the fluid engine.
    fluid = _cells(payload, engine="fluid")
    recovered = sum(c["recovered"] for c in fluid)
    total = sum(c["trials"] for c in fluid)
    assert recovered / total > 0.7, f"only {recovered}/{total} recovered"
