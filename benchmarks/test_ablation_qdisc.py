"""Extension — Astraea under active queue management.

Not a paper figure: the paper's environment supports "user-defined
queuing policies" (§3.2) but evaluates on drop-tail only.  This extension
bench runs the canonical three-flow scenario under drop-tail, RED and
CoDel, checking that (a) Astraea remains fair and efficient under AQM,
and (b) the AQMs do their job against a buffer-filling scheme (CUBIC's
standing queue shrinks, at some loss cost).
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results
from repro.config import LinkConfig, ScenarioConfig, replace
from repro.env import run_scenario
from repro.netsim import staggered_flows
from benchmarks.conftest import QUICK, TRIALS, run_once

QDISCS = {
    "droptail": {},
    "red": {"min_th_pkts": 40.0, "max_th_pkts": 180.0, "max_p": 0.15},
    "codel": {"target_s": 0.005, "interval_s": 0.1},
}

ECN_QDISC = {"target_s": 0.005, "interval_s": 0.1, "ecn": True}


def _scenario(cc: str, qdisc: str, seed: int) -> ScenarioConfig:
    interval = 15.0 if QUICK else 40.0
    flow_len = 45.0 if QUICK else 120.0
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0,
                      qdisc=qdisc, qdisc_kwargs=QDISCS[qdisc])
    flows = staggered_flows(3, cc=cc, interval_s=interval,
                            duration_s=flow_len)
    return ScenarioConfig(link=link, flows=flows,
                          duration_s=interval * 2 + flow_len, seed=seed)


def test_ablation_astraea_under_aqm(benchmark):
    def campaign():
        out = {}
        for cc in ("astraea", "cubic"):
            for qdisc in QDISCS:
                rows = []
                for seed in range(max(TRIALS // 2, 1)):
                    r = run_scenario(_scenario(cc, qdisc, seed))
                    rows.append({
                        "jain": r.mean_jain(),
                        "utilization": r.utilization(5.0),
                        "rtt_ms": r.mean_rtt_s() * 1e3,
                        "loss": r.mean_loss_rate(),
                    })
                out[(cc, qdisc)] = {k: float(np.mean([x[k] for x in rows]))
                                    for k in rows[0]}
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Extension — schemes under drop-tail / RED / CoDel",
        ["scheme", "qdisc", "Jain", "util", "RTT (ms)", "loss"],
        [[cc, q, v["jain"], v["utilization"], v["rtt_ms"], v["loss"]]
         for (cc, q), v in data.items()],
    )
    save_results("ablation_qdisc", {f"{cc}:{q}": v
                                    for (cc, q), v in data.items()})

    # Astraea keeps its fairness and efficiency under every discipline.
    for qdisc in QDISCS:
        v = data[("astraea", qdisc)]
        assert v["jain"] > 0.85, qdisc
        assert v["utilization"] > 0.8, qdisc
    # The AQMs curb CUBIC's standing queue relative to drop-tail.
    assert data[("cubic", "codel")]["rtt_ms"] < \
        data[("cubic", "droptail")]["rtt_ms"]
    assert data[("cubic", "red")]["rtt_ms"] <= \
        data[("cubic", "droptail")]["rtt_ms"] + 1.0


def test_ablation_ecn_vs_drop(benchmark):
    """ECN-marking CoDel controls an ECN-capable CUBIC flow with (near)
    zero loss, achieving the same delay control as dropping CoDel."""

    def campaign():
        out = {}
        for label, qdisc_kwargs, cc_kwargs in (
                ("drop", {"target_s": 0.005, "interval_s": 0.1}, {}),
                ("ecn", ECN_QDISC, {"ecn": True})):
            link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                              buffer_bdp=4.0, qdisc="codel",
                              qdisc_kwargs=qdisc_kwargs)
            flows = staggered_flows(2, cc="cubic", interval_s=0.0,
                                    duration_s=None, **cc_kwargs)
            r = run_scenario(ScenarioConfig(link=link, flows=flows,
                                            duration_s=20.0))
            out[label] = {
                "utilization": r.utilization(5.0),
                "rtt_ms": r.mean_rtt_s(5.0) * 1e3,
                "loss": r.mean_loss_rate(5.0),
            }
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Extension — CoDel dropping vs ECN marking (2 ECN CUBIC flows)",
        ["mode", "util", "RTT (ms)", "loss"],
        [[k, v["utilization"], v["rtt_ms"], v["loss"]]
         for k, v in data.items()],
    )
    save_results("ablation_ecn", data)
    # Same congestion control, no data loss.
    assert data["ecn"]["loss"] < data["drop"]["loss"] + 1e-9
    assert data["ecn"]["loss"] < 0.001
    assert data["ecn"]["rtt_ms"] < data["drop"]["rtt_ms"] * 1.5
    assert data["ecn"]["utilization"] > 0.85
