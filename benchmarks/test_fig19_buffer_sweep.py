"""Fig. 19 — resilience to buffer size (App. B.1).

Paper: sweeping the buffer from 0.1 to 16 BDP on a 100 Mbps / 30 ms link:
(a) Astraea reaches near-full utilisation from 0.1 BDP up, like BBR and
Aurora, while Orca (cubic-coupled) needs ~0.8 BDP and delay-based schemes
sit lower; (b) Aurora and BBR inflate latency with deep buffers while
Astraea holds moderate delay; (c) Astraea delivers near-lossless transfer
for buffers >= 0.1 BDP.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.env import run_scenario
from benchmarks.conftest import TRIALS, QUICK, run_once

SCHEMES = ("astraea", "aurora", "bbr", "cubic", "orca", "vegas", "copa")
BUFFERS_BDP = (0.1, 0.5, 1.0, 4.0, 16.0)


def _run(cc: str, buf: float, seed: int) -> dict[str, float]:
    scenario = scenarios.fig19_scenario(cc, buf, quick=QUICK, seed=seed)
    result = run_scenario(scenario)
    return {
        "utilization": result.utilization(skip_s=5.0),
        "rtt_ratio": result.mean_rtt_s() / scenario.link.rtt_s,
        "loss": result.mean_loss_rate(skip_s=5.0),
    }


def test_fig19_buffer_sweep(benchmark):
    def campaign():
        out = {}
        for cc in SCHEMES:
            for buf in BUFFERS_BDP:
                rows = [_run(cc, buf, seed)
                        for seed in range(max(TRIALS // 2, 1))]
                out[(cc, buf)] = {k: float(np.mean([r[k] for r in rows]))
                                  for k in rows[0]}
        return out

    data = run_once(benchmark, campaign)
    for metric, title in (("utilization", "(a) utilisation"),
                          ("rtt_ratio", "(b) latency inflation"),
                          ("loss", "(c) loss rate")):
        print_table(
            f"Fig. 19{title} vs buffer size (BDP multiples)",
            ["scheme", *[f"{b}x" for b in BUFFERS_BDP]],
            [[cc, *[data[(cc, b)][metric] for b in BUFFERS_BDP]]
             for cc in SCHEMES],
        )
    save_results("fig19", {f"{cc}:{b}": v for (cc, b), v in data.items()})

    # (a) Astraea: high utilisation from 0.1 BDP on.
    for buf in BUFFERS_BDP:
        assert data[("astraea", buf)]["utilization"] > 0.85, buf
    # Orca under-utilises with very shallow buffers relative to its own
    # deep-buffer performance (cubic coupling).
    assert data[("orca", 0.1)]["utilization"] < \
        data[("orca", 4.0)]["utilization"]
    # (b) Deep buffers: Aurora/BBR inflate latency well beyond Astraea.
    assert data[("aurora", 16.0)]["rtt_ratio"] > \
        data[("astraea", 16.0)]["rtt_ratio"] * 1.3
    # (c) Astraea near-lossless from 0.1 BDP.
    for buf in BUFFERS_BDP:
        assert data[("astraea", buf)]["loss"] < 0.01, buf
