"""Fig. 8 — RTT fairness: five flows with base RTTs 40-200 ms (§5.1.2).

Paper: Astraea's throughput stays closest to the 20 Mbps optimal across
the RTT range — comparable with Copa and Vivace, better than Aurora, Orca
and the TCPs (CUBIC and Reno starve long-RTT flows badly).  Astraea keeps
a mild advantage for the short-RTT flow (faster feedback), which the
paper also reports.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.bench.runners import run_scheme_trials
from repro.metrics import jain_index
from benchmarks.conftest import TRIALS, QUICK, run_once

SCHEMES = ("astraea", "cubic", "vegas", "copa", "orca", "reno")
OPTIMAL_MBPS = 20.0


def test_fig08_rtt_fairness(benchmark):
    def campaign():
        out = {}
        for cc in SCHEMES:
            results = run_scheme_trials(
                scenarios.fig8_scenario(cc, quick=QUICK), TRIALS)
            skip = 10.0 if QUICK else 40.0
            shares = np.mean(
                [[r.flow_mean_throughput(i, skip_s=skip) for i in range(5)]
                 for r in results], axis=0)
            out[cc] = {
                "shares_mbps": shares.tolist(),
                "jain": jain_index(shares),
                "max_deviation": float(np.max(np.abs(shares -
                                                     OPTIMAL_MBPS))),
            }
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 8 — per-flow throughput, base RTTs 40/80/120/160/200 ms "
        "(optimal 20 Mbps each)",
        ["scheme", "40ms", "80ms", "120ms", "160ms", "200ms", "Jain"],
        [[cc, *[round(s, 1) for s in v["shares_mbps"]], v["jain"]]
         for cc, v in data.items()],
    )
    save_results("fig08", data)

    astraea = data["astraea"]
    # Astraea shares within a small factor across a 5x RTT spread — far
    # better than the loss-based TCPs, which starve long-RTT flows by
    # 20-30x.  (Paper reports near-equal shares with a mild short-RTT
    # advantage; our trained policy's spread is wider and slightly favours
    # the RTT extremes — see EXPERIMENTS.md, [partial].)
    assert astraea["jain"] > 0.7
    assert astraea["jain"] > data["cubic"]["jain"] + 0.3
    assert astraea["jain"] > data["reno"]["jain"] + 0.3
    shares = np.asarray(astraea["shares_mbps"])
    assert shares.max() / max(shares.min(), 1e-6) < 5.0
    # CUBIC's RTT unfairness, for contrast, is an order of magnitude worse.
    cubic = np.asarray(data["cubic"]["shares_mbps"])
    assert cubic.max() / max(cubic.min(), 1e-6) > 10.0
