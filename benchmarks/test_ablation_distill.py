"""Extension — in-kernel-scale policy distillation (future work, §5.4).

The paper points to LiteFlow-style in-kernel model execution as the way
to cut Astraea's remaining overhead; that requires a network small
enough for a kernel datapath.  This bench distils the shipped 256/128/64
teacher into a 16/16 student and measures (a) decision agreement, (b)
end-to-end congestion behaviour of the student, and (c) the inference
cost reduction.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import print_table, save_results
from repro.core.astraea import AstraeaController
from repro.core.distill import (
    collect_states,
    distill_policy,
    evaluate_distillation,
)
from repro.core.policy import PolicyBundle, load_default_policy, new_actor
from benchmarks.conftest import run_once


def test_ablation_policy_distillation(benchmark):
    def campaign():
        teacher = load_default_policy("astraea") or \
            PolicyBundle(actor=new_actor())
        states = collect_states(teacher)
        student = distill_policy(teacher, states, epochs=600)
        report = evaluate_distillation(teacher, student, states)

        # End-to-end: student vs teacher on the canonical scenario.
        from repro.config import LinkConfig, ScenarioConfig
        from repro.env import run_scenario
        from repro.netsim import staggered_flows

        scenario = ScenarioConfig(
            link=LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0,
                            buffer_bdp=1.0),
            flows=staggered_flows(3, cc="astraea", interval_s=10.0,
                                  duration_s=30.0),
            duration_s=50.0,
        )
        rows = {}
        for name, bundle in (("teacher", teacher), ("student", student)):
            controllers = [AstraeaController(policy=bundle)
                           for _ in scenario.flows]
            result = run_scenario(scenario, controllers=controllers)
            rows[name] = {"jain": result.mean_jain(),
                          "utilization": result.utilization()}

        # Inference cost over a batch of states.
        batch = states[:2000]
        cost = {}
        for name, bundle in (("teacher", teacher), ("student", student)):
            t0 = time.process_time()
            for _ in range(5):
                bundle.actor.forward(batch)
            cost[name] = time.process_time() - t0
        return report, rows, cost

    report, rows, cost = run_once(benchmark, campaign)
    print_table(
        "Extension — distilled 16/16 student vs 256/128/64 teacher",
        ["metric", "value"],
        [["mean |action error|", report["mean_abs_error"]],
         ["sign agreement", report["sign_agreement"]],
         ["parameter compression", f'{report["compression"]:.0f}x'],
         ["teacher Jain / util", f'{rows["teacher"]["jain"]:.3f} / '
          f'{rows["teacher"]["utilization"]:.3f}'],
         ["student Jain / util", f'{rows["student"]["jain"]:.3f} / '
          f'{rows["student"]["utilization"]:.3f}'],
         ["teacher CPU (s, 10k states)", cost["teacher"]],
         ["student CPU (s, 10k states)", cost["student"]]],
    )
    save_results("ablation_distill", {
        **report,
        "teacher_jain": rows["teacher"]["jain"],
        "student_jain": rows["student"]["jain"],
        "teacher_util": rows["teacher"]["utilization"],
        "student_util": rows["student"]["utilization"],
        "teacher_cpu_s": cost["teacher"],
        "student_cpu_s": cost["student"],
    })

    assert report["sign_agreement"] > 0.8
    assert report["compression"] > 20
    assert cost["student"] < cost["teacher"] / 3
    # The student's end-to-end behaviour stays in the teacher's ballpark.
    assert rows["student"]["jain"] > rows["teacher"]["jain"] - 0.15
    assert rows["student"]["utilization"] > \
        rows["teacher"]["utilization"] - 0.15
