"""Fig. 20 — satellite link: 42 Mbps, 800 ms RTT, 0.74% random loss (App. B.2).

Paper: loss-reactive schemes (CUBIC, Vegas, and cubic-coupled Orca)
collapse; loss-insensitive schemes (Vivace, Copa, Aurora) fill the pipe;
BBR utilises well but oscillates with the long RTT.  Astraea is trained
loss-resilient and lands at moderate throughput with low normalised delay.
"""

from __future__ import annotations

import numpy as np

from repro.bench import print_table, save_results, scenarios
from repro.env import run_scenario
from benchmarks.conftest import TRIALS, QUICK, run_once

SCHEMES = ("astraea", "cubic", "vegas", "bbr", "copa", "vivace", "aurora",
           "orca")


def _run(cc: str, seed: int) -> dict[str, float]:
    scenario = scenarios.fig20_scenario(cc, quick=QUICK, seed=seed)
    result = run_scenario(scenario)
    return {
        "throughput_mbps": result.flow_mean_throughput(0, skip_s=15.0),
        "rtt_ratio": result.mean_rtt_s(skip_s=15.0) / scenario.link.rtt_s,
    }


def test_fig20_satellite(benchmark):
    def campaign():
        out = {}
        for cc in SCHEMES:
            rows = [_run(cc, seed) for seed in range(max(TRIALS // 2, 1))]
            out[cc] = {k: float(np.mean([r[k] for r in rows]))
                       for k in rows[0]}
        return out

    data = run_once(benchmark, campaign)
    print_table(
        "Fig. 20 — satellite link (42 Mbps, 800 ms, 0.74% loss)",
        ["scheme", "throughput (Mbps)", "RTT ratio", "paper"],
        [[cc, v["throughput_mbps"], v["rtt_ratio"],
          {"cubic": "collapses", "vegas": "collapses",
           "astraea": "moderate thr, low delay",
           "vivace": "high thr", "copa": "high thr"}.get(cc, "")]
         for cc, v in data.items()],
    )
    save_results("fig20", data)

    # Loss-reactive TCPs collapse under 0.74% random loss on a long pipe.
    assert data["cubic"]["throughput_mbps"] < 10.0
    # Astraea is loss-resilient: several times the loss-reactive TCPs.
    assert data["astraea"]["throughput_mbps"] > \
        2.0 * data["cubic"]["throughput_mbps"]
    # Loss-insensitive delay-based schemes fill the pipe (Copa, per paper).
    assert data["copa"]["throughput_mbps"] > 20.0
    # Astraea keeps the queue bounded (within the 1 BDP buffer; at 800 ms
    # — far beyond the 10-140 ms training range — our trained policy holds
    # more standing queue than the paper's, see EXPERIMENTS.md).
    assert data["astraea"]["rtt_ratio"] < 2.1
