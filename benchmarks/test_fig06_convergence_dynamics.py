"""Figs. 6, 7, 12 and Table 1 — the headline convergence study (§5.1.1, §5.2).

One campaign runs the canonical scenario (100 Mbps, 30 ms, 1 BDP; three
staggered flows) for every scheme and feeds four reports:

* Fig. 6  — temporal convergence behaviour (utilization/Jain/RTT summary);
* Fig. 7  — CDF of Jain indices over multi-flow timeslots;
* Fig. 12 — convergence time vs stability scatter;
* Table 1 — the qualitative fairness / fast-convergence / stability grid,
  derived from the measurements via thresholds.

Paper headline numbers: Astraea Jain ~0.991; convergence 0.408 s vs Orca
1.497 s (3.7x) and Vivace 3.438 s (8.4x); stability 2.124 Mbps vs Orca
5.519 (2.6x) and Vivace 6.016 (2.8x).  Our substrate is a fluid simulator,
so we assert the orderings and rough factors, not the absolute values.

Convergence metrics: the fig6 table reports the paper's strict
±10%-of-fair-share criterion; the fig12 ordering additionally uses the
Jain-threshold convergence time (time until the active flows' Jain index
sustains 0.9).  Our trained policy's equilibrium sits a small constant
offset from the exact fair split (EXPERIMENTS.md), so the strict
criterion under-reports its (visibly fast) collective convergence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table, save_results, scenarios
from repro.bench.runners import run_scheme_trials, summarize_trials
from repro.metrics import cdf
from repro.metrics.convergence import mean_jain_convergence_time
from benchmarks.conftest import TRIALS, QUICK, run_once

SCHEMES = ("astraea", "cubic", "bbr", "vegas", "copa", "vivace", "orca",
           "reno")
PENALTY_S = 40.0

_CACHE: dict = {}


def campaign():
    """Run the Fig. 6 scenario for every scheme (cached across tests)."""
    if "results" not in _CACHE:
        results = {}
        for cc in SCHEMES:
            results[cc] = run_scheme_trials(
                scenarios.fig6_scenario(cc, quick=QUICK), TRIALS)
        _CACHE["results"] = results
        _CACHE["summaries"] = {
            cc: summarize_trials(results[cc], cc, penalty_s=PENALTY_S)
            for cc in SCHEMES
        }
        _CACHE["jain_conv"] = {
            cc: float(np.mean([mean_jain_convergence_time(
                r, threshold=0.9, penalty_s=PENALTY_S)
                for r in results[cc]]))
            for cc in SCHEMES
        }
    return _CACHE["results"], _CACHE["summaries"]


def test_fig06_temporal_convergence(benchmark):
    results, summaries = run_once(benchmark, campaign)
    print_table(
        "Fig. 6 — convergence behaviour (100 Mbps, 30 ms, 1 BDP, 3 flows)",
        ["scheme", "util", "Jain", "RTT (ms)", "loss", "conv (s)",
         "stab (Mbps)"],
        [[s.scheme, s.utilization, s.mean_jain, s.mean_rtt_ms,
          s.mean_loss_rate, s.convergence_time_s, s.stability_mbps]
         for s in summaries.values()],
    )
    save_results("fig06", {cc: s.as_dict() for cc, s in summaries.items()})

    astraea = summaries["astraea"]
    # Astraea: high fairness at high utilisation with base-RTT latency and
    # no loss.  (Paper: Jain ~0.991; our trained policy reaches ~0.95 —
    # the residual gap is analysed in EXPERIMENTS.md.)
    assert astraea.mean_jain > 0.92
    assert astraea.utilization > 0.85
    assert astraea.mean_loss_rate < 0.005
    # Fairer than the other learning-based schemes and the loss-based TCPs
    # it is compared against in the figure.
    for other in ("cubic", "orca", "vivace", "copa"):
        assert astraea.mean_jain > summaries[other].mean_jain, other
    # Delay-based behaviour: holds base RTT while cubic fills the buffer.
    assert astraea.mean_rtt_ms < summaries["cubic"].mean_rtt_ms
    # Best stability among the learning-based schemes (and overall top-2).
    assert astraea.stability_mbps < summaries["orca"].stability_mbps
    assert astraea.stability_mbps < summaries["vivace"].stability_mbps


def test_fig07_jain_cdf(benchmark):
    def analyse():
        results, _ = campaign()
        out = {}
        for cc in SCHEMES:
            values = np.concatenate(
                [r.jain_series(0.5)[1] for r in results[cc]])
            x, f = cdf(values)
            out[cc] = {
                "p10": float(np.percentile(values, 10)),
                "median": float(np.median(values)),
                "frac_above_095": float(np.mean(values >= 0.95)),
            }
        return out

    data = run_once(benchmark, analyse)
    print_table(
        "Fig. 7 — CDF of Jain indices over multi-flow timeslots",
        ["scheme", "p10", "median", "P(Jain >= 0.95)"],
        [[cc, v["p10"], v["median"], v["frac_above_095"]]
         for cc, v in data.items()],
    )
    save_results("fig07", data)
    # Astraea's distribution concentrates near 1.0 (median high, short
    # unfair tail), and dominates the other learning-based schemes.
    assert data["astraea"]["median"] > 0.92
    assert data["astraea"]["p10"] > 0.8
    for other in ("orca", "vivace", "cubic"):
        assert data["astraea"]["median"] > data[other]["median"], other
        assert data["astraea"]["p10"] > data[other]["p10"], other


def test_fig12_convergence_vs_stability(benchmark):
    def analyse():
        _, summaries = campaign()
        return {cc: {"conv_strict_s": summaries[cc].convergence_time_s,
                     "conv_jain_s": _CACHE["jain_conv"][cc],
                     "stab_mbps": summaries[cc].stability_mbps}
                for cc in SCHEMES}

    data = run_once(benchmark, analyse)
    print_table(
        "Fig. 12 — convergence time vs stability "
        "(strict ±10% criterion and Jain≥0.9 criterion)",
        ["scheme", "conv ±10% (s)", "conv Jain (s)", "stability (Mbps)",
         "paper"],
        [[cc, v["conv_strict_s"], v["conv_jain_s"], v["stab_mbps"],
          {"astraea": "0.408 s / 2.12", "orca": "1.497 s / 5.52",
           "vivace": "3.438 s / 6.02"}.get(cc, "")]
         for cc, v in data.items()],
    )
    save_results("fig12", data)
    astraea = data["astraea"]
    # The paper's orderings, on the Jain-convergence criterion (our
    # trained policy's equilibrium offset makes the strict ±10% criterion
    # unreachable for it — see module docstring): Astraea converges much
    # faster than Orca, which converges faster than Vivace; Astraea is
    # the most stable of the learning-based schemes.
    assert astraea["conv_jain_s"] < data["orca"]["conv_jain_s"] / 2.0
    assert data["orca"]["conv_jain_s"] < data["vivace"]["conv_jain_s"]
    assert data["vivace"]["conv_jain_s"] > 8.0 * astraea["conv_jain_s"]
    assert astraea["stab_mbps"] < data["orca"]["stab_mbps"]
    assert astraea["stab_mbps"] < data["vivace"]["stab_mbps"]


def test_table1_qualitative_grid(benchmark):
    def analyse():
        _, summaries = campaign()
        grid = {}
        for cc in ("aurora", "vivace", "orca", "astraea"):
            if cc == "aurora":
                # Aurora's grid entry comes from its own Fig. 1a scenario.
                from repro.bench.runners import run_scheme_trials as rst

                res = rst(scenarios.fig1a_scenario(quick=QUICK), TRIALS)
                jain = float(np.mean([r.mean_jain() for r in res]))
                grid[cc] = {"fairness": jain > 0.85,
                            "fast_convergence": False,
                            "stability": True,
                            "jain": jain}
                continue
            s = summaries[cc]
            grid[cc] = {
                "fairness": s.mean_jain > 0.9,
                "fast_convergence": _CACHE["jain_conv"][cc] < 2.0
                and s.mean_jain > 0.9,
                "stability": s.stability_mbps < 2.0,
                "jain": s.mean_jain,
            }
        return grid

    grid = run_once(benchmark, analyse)

    def mark(b):
        return "yes" if b else "no"

    print_table(
        "Table 1 — qualitative comparison (derived from measurements)",
        ["scheme", "fairness", "fast convergence", "stability", "paper"],
        [[cc, mark(v["fairness"]), mark(v["fast_convergence"]),
          mark(v["stability"]),
          {"aurora": "no/no/no", "vivace": "yes/no/no",
           "orca": "no/yes/no", "astraea": "yes/yes/yes"}[cc]]
         for cc, v in grid.items()],
    )
    save_results("table1", grid)
    # The paper's bottom line: only Astraea satisfies all three.
    a = grid["astraea"]
    assert a["fairness"] and a["fast_convergence"] and a["stability"]
    for cc in ("aurora", "vivace", "orca"):
        v = grid[cc]
        assert not (v["fairness"] and v["fast_convergence"]
                    and v["stability"]), cc
