"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs (which must build a wheel) fail.  Keeping a ``setup.py`` lets
``pip install -e . --no-use-pep517`` / ``python setup.py develop`` work.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
