#!/usr/bin/env python3
"""Quickstart: run three competing Astraea flows on an emulated bottleneck.

This is the 60-second tour of the public API:

1. describe a bottleneck link and a flow arrival pattern,
2. run the scenario through the fluid emulator,
3. read fairness / utilisation / latency / convergence metrics off the
   result.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import LinkConfig, ScenarioConfig, run_scenario
from repro.metrics import (
    convergence_report,
    mean_convergence_time,
    mean_stability,
)
from repro.netsim import staggered_flows


def main() -> None:
    # A 100 Mbps bottleneck with 30 ms base RTT and a one-BDP buffer —
    # the canonical setup of the paper's Fig. 6.
    link = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_bdp=1.0)

    # Three Astraea flows arriving 20 s apart, each running 60 s.
    scenario = ScenarioConfig(
        link=link,
        flows=staggered_flows(3, cc="astraea", interval_s=20.0,
                              duration_s=60.0),
        duration_s=100.0,
    )

    result = run_scenario(scenario)

    print("Three Astraea flows on a 100 Mbps / 30 ms bottleneck")
    print(f"  link utilisation : {result.utilization():.3f}")
    print(f"  mean Jain index  : {result.mean_jain():.3f}")
    print(f"  mean RTT         : {result.mean_rtt_s() * 1e3:.1f} ms "
          f"(base {link.rtt_ms:.0f} ms)")
    print(f"  mean loss rate   : {result.mean_loss_rate():.5f}")

    reports = convergence_report(result)
    print(f"  convergence time : "
          f"{mean_convergence_time(reports, penalty_s=60.0):.2f} s "
          f"(mean over {len(reports)} flow events)")
    print(f"  stability        : {mean_stability(reports):.2f} Mbps "
          f"(post-convergence throughput std)")

    print("\nPer-flow mean throughput while all three were active:")
    times, matrix, active = result.throughput_matrix(grid_s=0.5)
    window = active.all(axis=0)
    for i in range(len(result.flows)):
        share = matrix[i, window].mean() if window.any() else float("nan")
        print(f"  flow {i}: {share:6.2f} Mbps")


if __name__ == "__main__":
    main()
