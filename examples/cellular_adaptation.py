#!/usr/bin/env python3
"""Cellular adaptation: track a rapidly varying LTE-like link (Fig. 13).

Cellular links change capacity on millisecond timescales.  This example
replays the synthetic LTE trace through the emulator for Astraea and
Vivace and prints a side-by-side timeline of link capacity vs achieved
goodput, plus tracking statistics — the experiment behind the paper's
responsiveness claim.

Run with::

    python examples/cellular_adaptation.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import scenarios
from repro.env import run_scenario
from repro.netsim.traces import LteTrace


def run(cc: str, seed: int = 0):
    scenario = scenarios.fig13_scenario(cc, quick=False, seed=seed)
    result = run_scenario(scenario)
    trace = LteTrace(seed=seed)
    times, matrix, active = result.throughput_matrix(1.0)
    capacity = np.array([trace.capacity_mbps(t) for t in times])
    live = active[0] & (times > 3.0)
    corr = float(np.corrcoef(matrix[0, live], capacity[live])[0, 1])
    return times, capacity, matrix[0], result, corr


def sparkline(values, lo, hi, width=60):
    blocks = " .:-=+*#%@"
    idx = np.linspace(0, len(values) - 1, width).astype(int)
    scaled = np.clip((values[idx] - lo) / max(hi - lo, 1e-9), 0, 0.999)
    return "".join(blocks[int(s * len(blocks))] for s in scaled)


def main() -> None:
    for cc in ("astraea", "vivace"):
        times, capacity, goodput, result, corr = run(cc)
        lo, hi = 0.0, capacity.max()
        print(f"\n=== {cc} on the LTE trace ===")
        print(f"capacity : {sparkline(capacity, lo, hi)}")
        print(f"goodput  : {sparkline(goodput, lo, hi)}")
        print(f"tracking correlation : {corr:.3f}")
        print(f"mean RTT             : {result.mean_rtt_s() * 1e3:.0f} ms "
              f"(base 40 ms)")
        print(f"mean loss rate       : {result.mean_loss_rate():.4f}")


if __name__ == "__main__":
    main()
