#!/usr/bin/env python3
"""Inference-service scalability: batched shared service vs per-flow servers.

Reproduces the §5.4 architectural comparison: Astraea serves many senders
from one shared service that batches requests over a 5 ms window, while
Orca-style deployments spawn one inference server per flow.  The example
replays an identical request timeline through both backends and reports
CPU cost and forward-pass counts as the flow count grows.

Run with::

    python examples/inference_service.py
"""

from __future__ import annotations

from repro.bench import print_table
from repro.core.policy import PolicyBundle, load_default_policy, new_actor
from repro.service import (
    BatchedInferenceService,
    PerFlowServers,
    synthetic_request_trace,
)


def main() -> None:
    bundle = load_default_policy("astraea") or PolicyBundle(actor=new_actor())
    rows = []
    for n_flows in (1, 10, 100, 500):
        trace = synthetic_request_trace(
            n_flows=n_flows, duration_s=2.0, mtp_s=0.020,
            state_dim=bundle.actor.in_dim, seed=n_flows)
        batched = BatchedInferenceService(bundle, batch_window_s=0.005)
        batched.serve_trace(trace)
        per_flow = PerFlowServers(bundle, n_flows=n_flows)
        per_flow.serve_trace(trace)
        rows.append([
            n_flows,
            len(trace),
            round(batched.accounting.cpu_time_s * 1e3, 1),
            round(per_flow.accounting.cpu_time_s * 1e3, 1),
            batched.accounting.forward_passes,
            per_flow.accounting.forward_passes,
            round(batched.accounting.mean_batch_size, 1),
        ])
        print(f"  served {n_flows} flows")

    print_table(
        "2 s of 20 ms-MTP inference requests: batched vs per-flow serving",
        ["flows", "requests", "batched CPU (ms)", "per-flow CPU (ms)",
         "batched passes", "per-flow passes", "mean batch"],
        rows,
    )


if __name__ == "__main__":
    main()
