#!/usr/bin/env python3
"""Multi-bottleneck max-min fairness: the Fig. 11 parking-lot topology.

Flow set 1 crosses only the 100 Mbps Link 1; flow set 2 crosses Link 1
and then a 20 Mbps Link 2.  The max-min-fair allocation changes regime at
8 FS-1 flows (before: FS-2 pinned by Link 2; after: Link 1 is the common
bottleneck).  This example sweeps the FS-1 count and prints measured vs
ideal shares for Astraea.

Run with::

    python examples/multi_bottleneck.py
"""

from __future__ import annotations

import numpy as np

from repro import run_topology
from repro.bench import print_table
from repro.netsim import parking_lot, parking_lot_ideal_shares


def main() -> None:
    rows = []
    for n_fs1 in (2, 4, 6, 8, 10, 12):
        topo = parking_lot(n_fs1=n_fs1, n_fs2=2, cc="astraea",
                           duration_s=30.0)
        result = run_topology(topo)
        skip = topo.duration_s / 2.0
        fs1 = np.mean([result.flow_mean_throughput(i, skip_s=skip)
                       for i in range(n_fs1)])
        fs2 = np.mean([result.flow_mean_throughput(i, skip_s=skip)
                       for i in range(n_fs1, n_fs1 + 2)])
        ideal1, ideal2 = parking_lot_ideal_shares(n_fs1)
        rows.append([n_fs1, round(fs1, 1), round(ideal1, 1),
                     round(fs2, 1), round(ideal2, 1)])
        print(f"  ran FS-1 = {n_fs1}")

    print_table(
        "Parking-lot topology (Link1 100 Mbps, Link2 20 Mbps) — "
        "measured vs max-min ideal",
        ["FS-1 flows", "FS-1 (Mbps)", "ideal", "FS-2 (Mbps)", "ideal"],
        rows,
    )
    print("\nRegime change at 8 FS-1 flows: below it FS-2 is pinned by "
          "Link 2;\nabove it everyone shares Link 1 equally.")


if __name__ == "__main__":
    main()
