#!/usr/bin/env python3
"""Challenging paths: satellite, high-speed WAN, shallow buffers.

Runs Astraea and a few contrasting schemes over the appendix scenarios
(Fig. 19/20/22): a 42 Mbps / 800 ms satellite link with 0.74% random
loss, a 10 Gbps / 10 ms WAN, and a shallow-buffer (0.1 BDP) link —
the conditions that break loss-reactive and probe-based schemes.

Run with::

    python examples/challenging_paths.py
"""

from __future__ import annotations

from repro.bench import print_table, scenarios
from repro.env import run_scenario

SCHEMES = ("astraea", "cubic", "bbr", "vivace")


def main() -> None:
    rows = []
    for cc in SCHEMES:
        r = run_scenario(scenarios.fig20_scenario(cc, quick=True))
        rows.append(["satellite 42M/800ms/0.74% loss", cc,
                     round(r.flow_mean_throughput(0, skip_s=15.0), 2),
                     round(r.mean_rtt_s(15.0) * 1e3, 0)])
        print(f"  satellite: {cc}")
    for cc in SCHEMES:
        r = run_scenario(scenarios.fig22_scenario(cc, quick=True))
        rows.append(["high-speed 10G/10ms", cc,
                     round(r.flow_mean_throughput(0, skip_s=3.0), 0),
                     round(r.mean_rtt_s(3.0) * 1e3, 1)])
        print(f"  10G: {cc}")
    for cc in SCHEMES:
        r = run_scenario(scenarios.fig19_scenario(cc, 0.1, quick=True))
        rows.append(["shallow buffer 0.1 BDP", cc,
                     round(r.flow_mean_throughput(0, skip_s=5.0), 1),
                     round(r.mean_rtt_s(5.0) * 1e3, 1)])
        print(f"  shallow: {cc}")

    print_table(
        "Challenging paths — throughput (Mbps) and RTT (ms)",
        ["scenario", "scheme", "throughput", "RTT (ms)"],
        rows,
    )


if __name__ == "__main__":
    main()
