#!/usr/bin/env python3
"""Fairness showdown: every scheme on the paper's Fig. 6 scenario.

Reproduces the headline comparison interactively: three staggered flows on
a 100 Mbps / 30 ms / 1 BDP bottleneck, once per congestion-control scheme,
reporting utilisation, Jain index, RTT, loss, convergence time and
stability side by side.

Run with::

    python examples/fairness_showdown.py [--schemes astraea,cubic,bbr]
"""

from __future__ import annotations

import argparse

from repro.bench import print_table, scenarios
from repro.bench.runners import run_scheme_trials, summarize_trials

DEFAULT_SCHEMES = ("astraea", "astraea-ref", "cubic", "bbr", "vegas",
                   "copa", "vivace", "orca", "reno")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schemes", type=str,
                        default=",".join(DEFAULT_SCHEMES))
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full time axes (slower)")
    args = parser.parse_args()

    rows = []
    for cc in args.schemes.split(","):
        cc = cc.strip()
        results = run_scheme_trials(
            scenarios.fig6_scenario(cc, quick=not args.full), args.trials)
        s = summarize_trials(results, cc, penalty_s=40.0)
        rows.append([s.scheme, s.utilization, s.mean_jain, s.mean_rtt_ms,
                     s.mean_loss_rate, s.convergence_time_s,
                     s.stability_mbps])
        print(f"  ran {cc}")

    print_table(
        "Fig. 6 scenario — three staggered flows, 100 Mbps / 30 ms / 1 BDP",
        ["scheme", "util", "Jain", "RTT (ms)", "loss", "conv (s)",
         "stab (Mbps)"],
        rows,
    )


if __name__ == "__main__":
    main()
