#!/usr/bin/env python3
"""Offline training example: produce the pretrained Astraea policy bundle.

This is the script that generated ``src/repro/models/astraea_pretrained.npz``
(and the Aurora baseline bundle).  It reproduces the paper's offline
training procedure (§3.4, Appendix A): randomised Table 3 environments,
shared-policy multi-agent experience collection, TD3-style updates on the
Table 4 cadence, periodic greedy evaluation, best-policy selection.

Usage::

    python examples/train_astraea.py --episodes 350 --out src/repro/models
    python examples/train_astraea.py --scheme aurora --episodes 150
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.config import TrainingConfig, replace
from repro.core.policy import DEFAULT_POLICY_NAMES
from repro.core.train import train_astraea, train_aurora


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scheme", choices=("astraea", "aurora"),
                        default="astraea")
    parser.add_argument("--episodes", type=int, default=350)
    parser.add_argument("--episode-duration", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-global-critic", action="store_true",
                        help="ablation: train with a local-only critic")
    parser.add_argument("--warm-start", type=Path, default=None,
                        help="fine-tune from an existing bundle")
    parser.add_argument("--actor-warmup", type=int, default=None,
                        help="freeze actor for the first N updates "
                        "(default 3000 when warm-starting, else 0)")
    parser.add_argument("--noise", type=float, default=None,
                        help="override initial exploration noise")
    parser.add_argument("--eval-every", type=int, default=25)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "src" / "repro" / "models")
    args = parser.parse_args()

    cfg = replace(TrainingConfig(), episodes=args.episodes,
                  episode_duration_s=args.episode_duration, seed=args.seed)
    if args.noise is not None:
        cfg = replace(cfg, exploration_noise=args.noise)
    actor_warmup = args.actor_warmup
    if actor_warmup is None:
        actor_warmup = 3000 if args.warm_start is not None else 0
    cfg = replace(cfg, actor_warmup_updates=actor_warmup)
    if args.scheme == "astraea":
        init_policy = None
        if args.warm_start is not None:
            from repro.core.policy import PolicyBundle

            init_policy = PolicyBundle.load(args.warm_start)
        bundle, history = train_astraea(
            cfg, use_global=not args.no_global_critic, verbose=True,
            eval_every=args.eval_every, init_policy=init_policy)
    else:
        bundle, history = train_aurora(cfg, verbose=True)

    name = DEFAULT_POLICY_NAMES[args.scheme]
    if args.no_global_critic:
        name = name.replace(".npz", "_localcritic.npz")
    path = bundle.save(args.out / name)
    summary = {
        "scheme": args.scheme,
        "episodes": args.episodes,
        "best_episode": history.best_episode,
        "best_score": history.best_score,
        "eval_jain": history.eval_jain,
        "eval_utilization": history.eval_utilization,
        "wall_time_s": round(history.wall_time_s, 1),
    }
    (args.out / name.replace(".npz", "_history.json")).write_text(
        json.dumps(summary, indent=2))
    print(f"saved {path}")
    print(json.dumps(summary, indent=2))


if __name__ == "__main__":
    main()
